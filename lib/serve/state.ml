(* Warm daemon state, keyed by epoch *name*: one warmed
   [Webdep_store.Incremental] per (epoch, layer) for dataset-backed
   epochs, pre-materialized so every query is a tally / cached-score
   lookup instead of a sweep — plus lightweight score-table epochs for
   churn-log histories, where a replayed epoch contributes only its
   per-country S/HHI/insularity rows (a few floats per country) rather
   than a full tally.  [answer] is a pure function of the state and the
   request — the daemon, the bench load generator and the one-shot
   [webdep query] subcommand all go through it, which is what makes
   daemon answers byte-identical to local ones. *)

module D = Webdep.Dataset
module Inc = Webdep_store.Incremental
module P = Protocol

let layers = [ D.Hosting; D.Dns; D.Ca; D.Tld ]

type score_row = { s : float; hhi : float; insularity : float }

type epoch_state =
  | Warm of { inc_by_layer : (D.layer * Inc.t) list }
      (** full per-layer tallies: every query kind answers *)
  | Scored of { by_layer : (D.layer * (string, score_row) Hashtbl.t) list }
      (** replayed churn-log epoch: scores only, no provider tallies *)

type t = {
  fingerprint : string;  (* world/store fingerprint keying the response cache *)
  countries : string list;  (* dataset order *)
  datasets : (string * D.t) list;  (* measured inputs, kept for snapshots *)
  epochs : (string * epoch_state) list;
}

let scored_of_rows rows =
  Scored
    {
      by_layer =
        List.map
          (fun (layer, per_country) ->
            let tbl = Hashtbl.create 64 in
            List.iter (fun (cc, row) -> Hashtbl.replace tbl cc row) per_country;
            (layer, tbl))
          rows;
    }

let make ~fingerprint ?(scored = []) datasets =
  let epochs =
    List.map
      (fun (name, ds) ->
        (name, Warm { inc_by_layer = List.map (fun l -> (l, Inc.create ds l)) layers }))
      datasets
    @ List.map (fun (name, rows) -> (name, scored_of_rows rows)) scored
  in
  let countries =
    match datasets with (_, ds) :: _ -> D.countries ds | [] -> []
  in
  { fingerprint; countries; datasets; epochs }

let fingerprint t = t.fingerprint
let countries t = t.countries
let datasets t = t.datasets
let epochs t = List.map fst t.epochs

(* Force every cached score so the first real queries hit warm state. *)
let warm t =
  List.iter
    (fun (_, es) ->
      match es with
      | Scored _ -> ()
      | Warm { inc_by_layer } ->
          List.iter
            (fun (_, inc) ->
              List.iter
                (fun cc ->
                  match Inc.score inc cc with _ -> () | exception Not_found -> ())
                (Inc.countries inc))
            inc_by_layer)
    t.epochs

let rec take k = function
  | [] -> []
  | _ when k <= 0 -> []
  | x :: rest -> x :: take (k - 1) rest

(* The satellite-2 ergonomics fix: an unknown epoch enumerates what the
   daemon actually has loaded instead of a bare failure. *)
let unknown_epoch t name =
  P.Error
    (Printf.sprintf "epoch %s not loaded (loaded: %s)" name
       (String.concat ", " (List.map fst t.epochs)))

let epoch_state t name = List.assoc_opt name t.epochs

let with_inc t epoch layer f =
  match epoch_state t epoch with
  | None -> unknown_epoch t epoch
  | Some (Warm { inc_by_layer }) -> (
      match List.assoc_opt layer inc_by_layer with
      | Some inc -> f inc
      | None -> P.Error (Printf.sprintf "layer not loaded for epoch %s" epoch))
  | Some (Scored _) ->
      P.Error
        (Printf.sprintf
           "epoch %s is scores-only (churn-log replay); this query needs a warmed \
            epoch"
           epoch)

let shares_response inc country k =
  match Inc.counts inc country with
  | counts ->
      let total = float_of_int (Inc.total inc country) in
      P.Shares
        (take k counts
        |> List.map (fun ((e : D.entity), n) ->
               { P.provider = e.D.name;
                 home = e.D.country;
                 share = float_of_int n /. total }))
  | exception Not_found -> P.Error (Printf.sprintf "no data for country %s" country)

let rank_sorted scored =
  List.sort
    (fun (cc1, s1) (cc2, s2) ->
      match Float.compare s2 s1 with 0 -> String.compare cc1 cc2 | c -> c)
    scored

(* One country's full score row under either epoch representation. *)
let row_of t epoch layer country =
  match epoch_state t epoch with
  | None -> Result.Error (unknown_epoch t epoch)
  | Some (Warm { inc_by_layer }) -> (
      match List.assoc_opt layer inc_by_layer with
      | None -> Result.Error (P.Error (Printf.sprintf "layer not loaded for epoch %s" epoch))
      | Some inc -> (
          match Inc.score inc country with
          | s ->
              Ok
                { s;
                  hhi = Inc.hhi inc country;
                  insularity = Inc.insularity inc country }
          | exception Not_found ->
              Result.Error (P.Error (Printf.sprintf "no data for country %s" country))))
  | Some (Scored { by_layer }) -> (
      match List.assoc_opt layer by_layer with
      | None -> Result.Error (P.Error (Printf.sprintf "layer not loaded for epoch %s" epoch))
      | Some tbl -> (
          match Hashtbl.find_opt tbl country with
          | Some row -> Ok row
          | None ->
              Result.Error (P.Error (Printf.sprintf "no data for country %s" country))))

let score_response_any t epoch layer country =
  match row_of t epoch layer country with
  | Ok { s; hhi; insularity } -> P.Scores { s; hhi; insularity }
  | Result.Error e -> e

let ranking_response t epoch layer k =
  match epoch_state t epoch with
  | None -> unknown_epoch t epoch
  | Some es -> (
      let scored =
        match es with
        | Warm { inc_by_layer } -> (
            match List.assoc_opt layer inc_by_layer with
            | None -> None
            | Some inc ->
                Some
                  (List.filter_map
                     (fun cc ->
                       match Inc.score inc cc with
                       | s -> Some (cc, s)
                       | exception Not_found -> None)
                     t.countries))
        | Scored { by_layer } -> (
            match List.assoc_opt layer by_layer with
            | None -> None
            | Some tbl ->
                (* Scored epochs may cover countries beyond the warm
                   datasets' slice; rank what the table has, in a
                   deterministic order. *)
                let ccs =
                  List.sort_uniq String.compare
                    (Hashtbl.fold (fun cc _ acc -> cc :: acc) tbl [])
                in
                Some
                  (List.filter_map
                     (fun cc ->
                       Option.map (fun r -> (cc, r.s)) (Hashtbl.find_opt tbl cc))
                     ccs))
      in
      match scored with
      | None -> P.Error (Printf.sprintf "layer not loaded for epoch %s" epoch)
      | Some scored -> P.Ranks (take k (rank_sorted scored)))

let delta_response t layer country ~old_epoch ~new_epoch =
  match (row_of t old_epoch layer country, row_of t new_epoch layer country) with
  | Ok o, Ok n ->
      P.Deltas
        { old_epoch; new_epoch; old_s = o.s; new_s = n.s; delta = n.s -. o.s }
  | Result.Error e, _ | _, Result.Error e -> e

let answer t = function
  | P.Ping -> P.Pong
  | P.Shutdown -> P.Bye
  | P.Epochs -> P.Epoch_list (List.map fst t.epochs)
  | P.Score { epoch; layer; country } -> score_response_any t epoch layer country
  | P.Top_shares { epoch; layer; country; k } ->
      with_inc t epoch layer (fun inc -> shares_response inc country k)
  | P.Ranking { epoch; layer; k } -> ranking_response t epoch layer k
  | P.Delta { layer; country; old_epoch; new_epoch } ->
      delta_response t layer country ~old_epoch ~new_epoch
