(* Durable warm-state snapshots for the serving plane.

   A snapshot serializes the daemon's measured inputs — one
   [Dataset.country_data] shard per (epoch, country) — so a restarted
   server rebuilds its warm [Incremental] state from disk in
   milliseconds instead of re-sweeping two epochs.  The format is
   designed around the two crash modes that actually happen:

   - killed mid-*write*: the snapshot is written to a temp file, fsynced
     and renamed into place, so the previous snapshot survives intact;
   - killed mid-*rename* on a filesystem that lost the tail (or a
     pre-atomic copy truncated in transit): every record carries its own
     CRC-32 and length, so [load] keeps the intact prefix of shards and
     reports the file as torn — the caller re-measures only the missing
     (epoch, country) shards.

   Layout: a sequence of records, each [u32 len][u32 crc32(payload)]
   [payload], big-endian.  Record 0 is the header (schema tag,
   fingerprint, explicit country list, epoch list, expected shard
   count); every following record is one shard.  The fingerprint covers
   the world parameters but *not* a [--countries] filter, which is why
   the header carries the country list explicitly — a snapshot taken
   under a filter must not warm a server asked for a different slice.

   Payload internals reuse the wire codec primitives from [Protocol]
   (and its [Protocol_error] for corrupt-payload signalling), with one
   addition: per-shard interned string tables, so entity names and
   country codes are written once per shard rather than once per site. *)

module D = Webdep.Dataset
module P = Protocol

(* /2: epochs are names (length-prefixed strings) rather than u8 enum
   codes — the serving plane is keyed by epoch name since the churn-log
   generalization, and a snapshot must round-trip whatever the state
   holds. *)
let schema = "webdep-snapshot/2"

let m_saved = Webdep_obs.Metrics.counter "serve.snapshot.saved"
let m_loaded = Webdep_obs.Metrics.counter "serve.snapshot.loaded"
let m_rejected = Webdep_obs.Metrics.counter "serve.snapshot.rejected"
let m_torn = Webdep_obs.Metrics.counter "serve.snapshot.torn_recovered"

type shard = { epoch : string; data : D.country_data }

type load =
  | Absent
  | Rejected  (** unreadable header, schema/fingerprint/countries mismatch *)
  | Loaded of shard list
  | Torn of shard list  (** intact prefix of a truncated/corrupted file *)

(* --- CRC-32 (IEEE, reflected) ------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx = Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xffl) in
      c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

(* --- u32 on top of the Protocol primitives ------------------------------ *)

let put_u32 b v =
  P.put_u8 b (v lsr 24);
  P.put_u8 b (v lsr 16);
  P.put_u8 b (v lsr 8);
  P.put_u8 b v

let get_u32 cur =
  let hi = P.get_u16 cur in
  let lo = P.get_u16 cur in
  (hi lsl 16) lor lo

(* --- per-shard string table --------------------------------------------- *)

(* Interns the entity names / country codes / geo labels / language tags
   of one shard; ids are u16, assigned in first-encounter order.  Sites
   reference strings by id; domains stay raw (they are unique). *)
type table = { tbl : (string, int) Hashtbl.t; mutable rev : string list; mutable n : int }

let table_create () = { tbl = Hashtbl.create 64; rev = []; n = 0 }

let intern t s =
  match Hashtbl.find_opt t.tbl s with
  | Some id -> id
  | None ->
      let id = t.n in
      Hashtbl.add t.tbl s id;
      t.rev <- s :: t.rev;
      t.n <- id + 1;
      id

let table_strings t = List.rev t.rev

(* --- shard encode ------------------------------------------------------- *)

let put_opt_entity tb b = function
  | None -> P.put_u16 b 0
  | Some (e : D.entity) ->
      P.put_u16 b (intern tb e.D.name + 1);
      P.put_u16 b (intern tb e.D.country)

let put_opt_str tb b = function
  | None -> P.put_u16 b 0
  | Some s -> P.put_u16 b (intern tb s + 1)

let encode_shard { epoch; data } =
  let tb = table_create () in
  (* Two passes: intern first so the table serializes ahead of the sites. *)
  let body = Buffer.create (256 * List.length data.D.sites) in
  put_u32 body (List.length data.D.sites);
  List.iter
    (fun (s : D.site) ->
      P.put_str body s.D.domain;
      put_opt_entity tb body s.D.hosting;
      put_opt_entity tb body s.D.dns;
      put_opt_entity tb body s.D.ca;
      P.put_u16 body (intern tb s.D.tld.D.name);
      P.put_u16 body (intern tb s.D.tld.D.country);
      put_opt_str tb body s.D.hosting_geo;
      put_opt_str tb body s.D.ns_geo;
      put_opt_str tb body s.D.language;
      P.put_u8 body
        ((if s.D.hosting_anycast then 1 else 0)
        lor if s.D.ns_anycast then 2 else 0))
    data.D.sites;
  let b = Buffer.create (Buffer.length body + 1024) in
  P.put_str b epoch;
  P.put_str b data.D.country;
  P.put_u16 b tb.n;
  List.iter (fun s -> P.put_str b s) (table_strings tb);
  Buffer.add_buffer b body;
  Buffer.contents b

(* --- shard decode ------------------------------------------------------- *)

(* [Array.init]/[List.init] leave evaluation order unspecified; cursor
   reads must be strictly sequential. *)
let read_list n f =
  let rec go acc i = if i = n then List.rev acc else go (f () :: acc) (i + 1) in
  go [] 0

let read_array n f = Array.of_list (read_list n f)

let get_table_str strings cur =
  let id = P.get_u16 cur in
  if id >= Array.length strings then P.fail "string id %d out of table" id;
  strings.(id)

let get_opt_entity strings cur =
  match P.get_u16 cur with
  | 0 -> None
  | id1 ->
      if id1 - 1 >= Array.length strings then P.fail "string id %d out of table" (id1 - 1);
      let name = strings.(id1 - 1) in
      let country = get_table_str strings cur in
      Some { D.name; country }

let get_opt_str strings cur =
  match P.get_u16 cur with
  | 0 -> None
  | id1 ->
      if id1 - 1 >= Array.length strings then P.fail "string id %d out of table" (id1 - 1);
      Some strings.(id1 - 1)

let decode_shard payload =
  let cur = { P.data = payload; off = 0 } in
  let epoch = P.get_str cur in
  let country = P.get_str cur in
  let nstrings = P.get_u16 cur in
  let strings = read_array nstrings (fun () -> P.get_str cur) in
  let nsites = get_u32 cur in
  if nsites < 0 || nsites > 0x1000000 then P.fail "absurd site count %d" nsites;
  let sites =
    read_list nsites (fun () ->
        let domain = P.get_str cur in
        let hosting = get_opt_entity strings cur in
        let dns = get_opt_entity strings cur in
        let ca = get_opt_entity strings cur in
        let tld_name = get_table_str strings cur in
        let tld_country = get_table_str strings cur in
        let hosting_geo = get_opt_str strings cur in
        let ns_geo = get_opt_str strings cur in
        let language = get_opt_str strings cur in
        let flags = P.get_u8 cur in
        {
          D.domain;
          hosting;
          dns;
          ca;
          tld = { D.name = tld_name; country = tld_country };
          hosting_geo;
          ns_geo;
          hosting_anycast = flags land 1 <> 0;
          ns_anycast = flags land 2 <> 0;
          language;
        })
  in
  if cur.P.off <> String.length payload then P.fail "trailing bytes in shard";
  { epoch; data = { D.country; sites } }

(* --- header ------------------------------------------------------------- *)

let encode_header ~fingerprint ~countries ~epochs ~shard_count =
  let b = Buffer.create 256 in
  P.put_str b schema;
  P.put_str b fingerprint;
  P.put_u16 b (List.length countries);
  List.iter (fun cc -> P.put_str b cc) countries;
  P.put_u8 b (List.length epochs);
  List.iter (fun e -> P.put_str b e) epochs;
  put_u32 b shard_count;
  Buffer.contents b

type header = {
  h_fingerprint : string;
  h_countries : string list;
  h_epochs : string list;
  h_shards : int;
}

let decode_header payload =
  let cur = { P.data = payload; off = 0 } in
  let tag = P.get_str cur in
  if tag <> schema then P.fail "schema mismatch: %s" tag;
  let h_fingerprint = P.get_str cur in
  let nc = P.get_u16 cur in
  let h_countries = read_list nc (fun () -> P.get_str cur) in
  let ne = P.get_u8 cur in
  let h_epochs = read_list ne (fun () -> P.get_str cur) in
  let h_shards = get_u32 cur in
  if cur.P.off <> String.length payload then P.fail "trailing bytes in header";
  { h_fingerprint; h_countries; h_epochs; h_shards }

(* --- record framing ----------------------------------------------------- *)

let add_record buf payload =
  let b = Buffer.create 8 in
  put_u32 b (String.length payload);
  put_u32 b (Int32.to_int (Int32.logand (crc32 payload) 0xFFFFFFFFl) land 0xFFFFFFFF);
  Buffer.add_buffer buf b;
  Buffer.add_string buf payload

(* Next record of [data] at [off]: [Some (payload, off')] when the
   length, bytes and CRC are all intact, [None] at a torn or corrupt
   tail.  A CRC mismatch poisons everything after it — offsets are no
   longer trustworthy — so the reader stops rather than resyncs. *)
let read_record data off =
  let len = String.length data in
  if off + 8 > len then None
  else
    let cur = { P.data; off } in
    let plen = get_u32 cur in
    let crc = get_u32 cur in
    if plen < 0 || off + 8 + plen > len then None
    else
      let payload = String.sub data (off + 8) plen in
      let actual = Int32.to_int (Int32.logand (crc32 payload) 0xFFFFFFFFl) land 0xFFFFFFFF in
      if actual <> crc then None else Some (payload, off + 8 + plen)

(* --- save / load -------------------------------------------------------- *)

let save ~path ~fingerprint datasets =
  let countries =
    match datasets with (_, ds) :: _ -> D.countries ds | [] -> []
  in
  let epochs = List.map fst datasets in
  let shard_count = List.length epochs * List.length countries in
  let buf = Buffer.create (1 lsl 20) in
  add_record buf (encode_header ~fingerprint ~countries ~epochs ~shard_count);
  List.iter
    (fun (epoch, ds) ->
      List.iter
        (fun cc ->
          add_record buf (encode_shard { epoch; data = D.country_exn ds cc }))
        countries)
    datasets;
  (* Atomic replace: temp file, fsync, rename.  A crash at any point
     leaves either the old snapshot or the new one, never a mix. *)
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  (try
     Buffer.output_buffer oc buf;
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.rename tmp path;
  Webdep_obs.Metrics.incr m_saved

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load ~path ~fingerprint ~countries =
  if not (Sys.file_exists path) then Absent
  else
    let data = read_file path in
    let reject () =
      Webdep_obs.Metrics.incr m_rejected;
      Rejected
    in
    match read_record data 0 with
    | None -> reject ()
    | Some (hpayload, off) -> (
        match decode_header hpayload with
        | exception P.Protocol_error _ -> reject ()
        | h ->
            if h.h_fingerprint <> fingerprint || h.h_countries <> countries
            then reject ()
            else
              let rec shards acc off n =
                if n = 0 then (List.rev acc, false)
                else
                  match read_record data off with
                  | None -> (List.rev acc, true)
                  | Some (payload, off') -> (
                      match decode_shard payload with
                      | exception P.Protocol_error _ -> (List.rev acc, true)
                      | shard -> shards (shard :: acc) off' (n - 1))
              in
              let got, torn = shards [] off h.h_shards in
              if torn then (
                Webdep_obs.Metrics.incr m_torn;
                Torn got)
              else (
                Webdep_obs.Metrics.incr m_loaded;
                Loaded got))

(* --- rebuilding datasets from shards ------------------------------------ *)

(* Regroup loaded shards into per-epoch datasets, in snapshot country
   order.  [fill] supplies any shard the snapshot was missing (the torn
   case) — typically a re-measure of just that (epoch, country); the
   complete [Loaded] case never calls it. *)
let to_datasets ~epochs ~countries ~fill shards =
  let tbl = Hashtbl.create 512 in
  List.iter (fun s -> Hashtbl.replace tbl (s.epoch, s.data.D.country) s.data) shards;
  List.map
    (fun epoch ->
      let b = D.builder () in
      List.iter
        (fun cc ->
          let data =
            match Hashtbl.find_opt tbl (epoch, cc) with
            | Some d -> d
            | None -> fill epoch cc
          in
          D.builder_add b data)
        countries;
      (epoch, D.builder_finish b))
    epochs
