(* Wire protocol of the dependence-query daemon.

   Frames are 4-byte big-endian length prefixes followed by a binary
   payload; requests and responses are tagged records with fixed-width
   integers, 64-bit IEEE-754 big-endian floats and u16-length-prefixed
   strings, so [encode ∘ decode = id] holds byte-for-byte and a
   truncated buffer is always rejected instead of misparsed.  A JSON
   debug representation (one [Webdep_json] object per message, used by
   the daemon's JSON-lines mode) mirrors the same shapes for poking the
   server with a line-oriented client. *)

module D = Webdep.Dataset
module World = Webdep_worldgen.World
module Json = Webdep_json

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Protocol_error msg)) fmt

(* --- message types ------------------------------------------------------ *)

(* Epochs travel as names (u16-length-prefixed strings), not enum codes:
   the serving plane is no longer limited to the two measured worlds —
   a churn-log replay registers one epoch per committed log entry. *)
type request =
  | Ping
  | Score of { epoch : string; layer : D.layer; country : string }
  | Top_shares of { epoch : string; layer : D.layer; country : string; k : int }
  | Ranking of { epoch : string; layer : D.layer; k : int }
  | Delta of {
      layer : D.layer;
      country : string;
      old_epoch : string;
      new_epoch : string;
    }
  | Shutdown
  | Epochs

type share = { provider : string; home : string; share : float }

type response =
  | Pong
  | Scores of { s : float; hhi : float; insularity : float }
  | Shares of share list
  | Ranks of (string * float) list
  | Deltas of {
      old_epoch : string;
      new_epoch : string;
      old_s : float;
      new_s : float;
      delta : float;
    }
  | Overloaded
  | Bye
  | Draining
  | Epoch_list of string list
  | Error of string

(* --- enum codes --------------------------------------------------------- *)

let layer_code = function D.Hosting -> 0 | D.Dns -> 1 | D.Ca -> 2 | D.Tld -> 3

let layer_of_code = function
  | 0 -> D.Hosting
  | 1 -> D.Dns
  | 2 -> D.Ca
  | 3 -> D.Tld
  | c -> fail "bad layer code %d" c

let layer_name = function
  | D.Hosting -> "hosting"
  | D.Dns -> "dns"
  | D.Ca -> "ca"
  | D.Tld -> "tld"

let layer_of_name s =
  match String.lowercase_ascii s with
  | "hosting" -> Some D.Hosting
  | "dns" -> Some D.Dns
  | "ca" -> Some D.Ca
  | "tld" -> Some D.Tld
  | _ -> None

let epoch_of_name = function
  | "2023" | "2023-05" -> Some World.May_2023
  | "2025" | "2025-05" -> Some World.May_2025
  | _ -> None

(* Short forms of the two measured worlds normalize to their canonical
   names; anything else (a churn-log epoch like "e7") passes through
   verbatim and is resolved — or rejected with the loaded-epoch list —
   by the server. *)
let canonical_epoch name =
  match epoch_of_name name with
  | Some e -> World.epoch_name e
  | None -> name

(* --- binary encoding ---------------------------------------------------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u16 b v =
  if v < 0 || v > 0xffff then fail "u16 out of range: %d" v;
  put_u8 b (v lsr 8);
  put_u8 b v

let put_f64 b v = Buffer.add_int64_be b (Int64.bits_of_float v)

let put_str b s =
  put_u16 b (String.length s);
  Buffer.add_string b s

type cursor = { data : string; mutable off : int }

let need cur n =
  if cur.off + n > String.length cur.data then fail "truncated payload"

let get_u8 cur =
  need cur 1;
  let v = Char.code cur.data.[cur.off] in
  cur.off <- cur.off + 1;
  v

let get_u16 cur =
  let hi = get_u8 cur in
  let lo = get_u8 cur in
  (hi lsl 8) lor lo

let get_f64 cur =
  need cur 8;
  let v = Int64.float_of_bits (String.get_int64_be cur.data cur.off) in
  cur.off <- cur.off + 8;
  v

let get_str cur =
  let n = get_u16 cur in
  need cur n;
  let s = String.sub cur.data cur.off n in
  cur.off <- cur.off + n;
  s

let encode_request req =
  let b = Buffer.create 32 in
  (match req with
  | Ping -> put_u8 b 0
  | Score { epoch; layer; country } ->
      put_u8 b 1;
      put_str b epoch;
      put_u8 b (layer_code layer);
      put_str b country
  | Top_shares { epoch; layer; country; k } ->
      put_u8 b 2;
      put_str b epoch;
      put_u8 b (layer_code layer);
      put_str b country;
      put_u16 b k
  | Ranking { epoch; layer; k } ->
      put_u8 b 3;
      put_str b epoch;
      put_u8 b (layer_code layer);
      put_u16 b k
  | Delta { layer; country; old_epoch; new_epoch } ->
      put_u8 b 4;
      put_u8 b (layer_code layer);
      put_str b country;
      put_str b old_epoch;
      put_str b new_epoch
  | Shutdown -> put_u8 b 5
  | Epochs -> put_u8 b 6);
  Buffer.contents b

let decode_request_exn payload =
  let cur = { data = payload; off = 0 } in
  let req =
    match get_u8 cur with
    | 0 -> Ping
    | 1 ->
        let epoch = get_str cur in
        let layer = layer_of_code (get_u8 cur) in
        let country = get_str cur in
        Score { epoch; layer; country }
    | 2 ->
        let epoch = get_str cur in
        let layer = layer_of_code (get_u8 cur) in
        let country = get_str cur in
        let k = get_u16 cur in
        Top_shares { epoch; layer; country; k }
    | 3 ->
        let epoch = get_str cur in
        let layer = layer_of_code (get_u8 cur) in
        let k = get_u16 cur in
        Ranking { epoch; layer; k }
    | 4 ->
        let layer = layer_of_code (get_u8 cur) in
        let country = get_str cur in
        let old_epoch = get_str cur in
        let new_epoch = get_str cur in
        Delta { layer; country; old_epoch; new_epoch }
    | 5 -> Shutdown
    | 6 -> Epochs
    | t -> fail "bad request tag %d" t
  in
  if cur.off <> String.length payload then fail "trailing bytes after request";
  req

let decode_request payload =
  match decode_request_exn payload with
  | req -> Ok req
  | exception Protocol_error msg -> Result.Error msg

let encode_response resp =
  let b = Buffer.create 64 in
  (match resp with
  | Pong -> put_u8 b 0
  | Scores { s; hhi; insularity } ->
      put_u8 b 1;
      put_f64 b s;
      put_f64 b hhi;
      put_f64 b insularity
  | Shares shares ->
      put_u8 b 2;
      put_u16 b (List.length shares);
      List.iter
        (fun { provider; home; share } ->
          put_str b provider;
          put_str b home;
          put_f64 b share)
        shares
  | Ranks ranks ->
      put_u8 b 3;
      put_u16 b (List.length ranks);
      List.iter
        (fun (cc, s) ->
          put_str b cc;
          put_f64 b s)
        ranks
  | Deltas { old_epoch; new_epoch; old_s; new_s; delta } ->
      put_u8 b 4;
      put_str b old_epoch;
      put_str b new_epoch;
      put_f64 b old_s;
      put_f64 b new_s;
      put_f64 b delta
  | Overloaded -> put_u8 b 5
  | Bye -> put_u8 b 6
  | Error msg ->
      put_u8 b 7;
      put_str b msg
  | Draining -> put_u8 b 8
  | Epoch_list epochs ->
      put_u8 b 9;
      put_u16 b (List.length epochs);
      List.iter (fun e -> put_str b e) epochs);
  Buffer.contents b

let decode_response_exn payload =
  let cur = { data = payload; off = 0 } in
  let resp =
    match get_u8 cur with
    | 0 -> Pong
    | 1 ->
        let s = get_f64 cur in
        let hhi = get_f64 cur in
        let insularity = get_f64 cur in
        Scores { s; hhi; insularity }
    | 2 ->
        let n = get_u16 cur in
        let shares =
          List.init n (fun _ ->
              let provider = get_str cur in
              let home = get_str cur in
              let share = get_f64 cur in
              { provider; home; share })
        in
        Shares shares
    | 3 ->
        let n = get_u16 cur in
        let ranks =
          List.init n (fun _ ->
              let cc = get_str cur in
              let s = get_f64 cur in
              (cc, s))
        in
        Ranks ranks
    | 4 ->
        let old_epoch = get_str cur in
        let new_epoch = get_str cur in
        let old_s = get_f64 cur in
        let new_s = get_f64 cur in
        let delta = get_f64 cur in
        Deltas { old_epoch; new_epoch; old_s; new_s; delta }
    | 5 -> Overloaded
    | 6 -> Bye
    | 7 -> Error (get_str cur)
    | 8 -> Draining
    | 9 ->
        let n = get_u16 cur in
        Epoch_list (List.init n (fun _ -> get_str cur))
    | t -> fail "bad response tag %d" t
  in
  if cur.off <> String.length payload then fail "trailing bytes after response";
  resp

let decode_response payload =
  match decode_response_exn payload with
  | resp -> Ok resp
  | exception Protocol_error msg -> Result.Error msg

(* --- framing ------------------------------------------------------------ *)

let max_payload = 1 lsl 24

let frame payload =
  let n = String.length payload in
  if n = 0 || n > max_payload then fail "bad frame length %d" n;
  let b = Buffer.create (n + 4) in
  Buffer.add_int32_be b (Int32.of_int n);
  Buffer.add_string b payload;
  Buffer.contents b

(* Split every complete frame out of [buf.[0..len)].  Returns the
   payloads in arrival order and the bytes consumed; a trailing partial
   frame stays unconsumed until more data arrives.
   @raise Protocol_error on a corrupt length prefix — the stream has no
   resynchronization point, so the connection must be dropped. *)
let parse_frames buf len =
  let rec go off acc =
    if len - off < 4 then (List.rev acc, off)
    else
      let n = Int32.to_int (Bytes.get_int32_be buf off) in
      if n <= 0 || n > max_payload then fail "bad frame length %d" n
      else if len - off < 4 + n then (List.rev acc, off)
      else go (off + 4 + n) (Bytes.sub_string buf (off + 4) n :: acc)
  in
  go 0 []

(* --- JSON debug representation ------------------------------------------ *)

let request_to_json req =
  let open Json in
  match req with
  | Ping -> Obj [ ("kind", String "ping") ]
  | Score { epoch; layer; country } ->
      Obj
        [ ("kind", String "score");
          ("epoch", String epoch);
          ("layer", String (layer_name layer));
          ("country", String country) ]
  | Top_shares { epoch; layer; country; k } ->
      Obj
        [ ("kind", String "topk");
          ("epoch", String epoch);
          ("layer", String (layer_name layer));
          ("country", String country);
          ("k", Int k) ]
  | Ranking { epoch; layer; k } ->
      Obj
        [ ("kind", String "ranking");
          ("epoch", String epoch);
          ("layer", String (layer_name layer));
          ("k", Int k) ]
  | Delta { layer; country; old_epoch; new_epoch } ->
      Obj
        [ ("kind", String "delta");
          ("layer", String (layer_name layer));
          ("country", String country);
          ("old_epoch", String old_epoch);
          ("new_epoch", String new_epoch) ]
  | Shutdown -> Obj [ ("kind", String "shutdown") ]
  | Epochs -> Obj [ ("kind", String "epochs") ]

let json_str j key =
  match Json.member key j with
  | Some (Json.String s) -> s
  | _ -> fail "missing string field %S" key

let json_int j key =
  match Json.member key j with
  | Some (Json.Int i) -> i
  | _ -> fail "missing int field %S" key

let json_float j key =
  match Json.member key j with
  | Some (Json.Float v) -> v
  | Some (Json.Int i) -> float_of_int i
  | _ -> fail "missing float field %S" key

let json_epoch j = canonical_epoch (json_str j "epoch")

let json_layer j =
  let s = json_str j "layer" in
  match layer_of_name s with Some l -> l | None -> fail "bad layer %S" s

let request_of_json j =
  match json_str j "kind" with
  | "ping" -> Ping
  | "score" ->
      Score { epoch = json_epoch j; layer = json_layer j; country = json_str j "country" }
  | "topk" ->
      Top_shares
        { epoch = json_epoch j;
          layer = json_layer j;
          country = json_str j "country";
          k = json_int j "k" }
  | "ranking" -> Ranking { epoch = json_epoch j; layer = json_layer j; k = json_int j "k" }
  | "delta" ->
      (* Epoch-range form; the range defaults to the paper's 2023→2025
         pair when the fields are absent. *)
      let epoch_field key default =
        match Json.member key j with
        | Some (Json.String s) -> canonical_epoch s
        | _ -> default
      in
      Delta
        {
          layer = json_layer j;
          country = json_str j "country";
          old_epoch = epoch_field "old_epoch" (World.epoch_name World.May_2023);
          new_epoch = epoch_field "new_epoch" (World.epoch_name World.May_2025);
        }
  | "shutdown" -> Shutdown
  | "epochs" -> Epochs
  | kind -> fail "bad request kind %S" kind

let request_of_json_string line =
  match Json.parse line with
  | j -> ( match request_of_json j with req -> Ok req | exception Protocol_error msg -> Result.Error msg)
  | exception Json.Parse_error msg -> Result.Error msg

let response_to_json resp =
  let open Json in
  match resp with
  | Pong -> Obj [ ("kind", String "pong") ]
  | Scores { s; hhi; insularity } ->
      Obj
        [ ("kind", String "scores");
          ("s", Float s);
          ("hhi", Float hhi);
          ("insularity", Float insularity) ]
  | Shares shares ->
      Obj
        [ ("kind", String "shares");
          ( "shares",
            List
              (List.map
                 (fun { provider; home; share } ->
                   Obj
                     [ ("provider", String provider);
                       ("home", String home);
                       ("share", Float share) ])
                 shares) ) ]
  | Ranks ranks ->
      Obj
        [ ("kind", String "ranking");
          ( "ranks",
            List
              (List.map
                 (fun (cc, s) -> Obj [ ("country", String cc); ("s", Float s) ])
                 ranks) ) ]
  | Deltas { old_epoch; new_epoch; old_s; new_s; delta } ->
      Obj
        [ ("kind", String "delta");
          ("old_epoch", String old_epoch);
          ("new_epoch", String new_epoch);
          ("old", Float old_s);
          ("new", Float new_s);
          ("delta", Float delta) ]
  | Overloaded -> Obj [ ("kind", String "overloaded") ]
  | Bye -> Obj [ ("kind", String "bye") ]
  | Draining -> Obj [ ("kind", String "draining") ]
  | Epoch_list epochs ->
      Obj
        [ ("kind", String "epochs");
          ("epochs", List (List.map (fun e -> String e) epochs)) ]
  | Error msg -> Obj [ ("kind", String "error"); ("message", String msg) ]

let response_of_json j =
  match json_str j "kind" with
  | "pong" -> Pong
  | "scores" ->
      Scores
        { s = json_float j "s";
          hhi = json_float j "hhi";
          insularity = json_float j "insularity" }
  | "shares" ->
      let items =
        match Json.member "shares" j with
        | Some (Json.List l) -> l
        | _ -> fail "missing shares list"
      in
      Shares
        (List.map
           (fun item ->
             { provider = json_str item "provider";
               home = json_str item "home";
               share = json_float item "share" })
           items)
  | "ranking" ->
      let items =
        match Json.member "ranks" j with
        | Some (Json.List l) -> l
        | _ -> fail "missing ranks list"
      in
      Ranks (List.map (fun item -> (json_str item "country", json_float item "s")) items)
  | "delta" ->
      Deltas
        {
          old_epoch = json_str j "old_epoch";
          new_epoch = json_str j "new_epoch";
          old_s = json_float j "old";
          new_s = json_float j "new";
          delta = json_float j "delta";
        }
  | "overloaded" -> Overloaded
  | "bye" -> Bye
  | "draining" -> Draining
  | "epochs" ->
      let items =
        match Json.member "epochs" j with
        | Some (Json.List l) -> l
        | _ -> fail "missing epochs list"
      in
      Epoch_list
        (List.map
           (function Json.String s -> s | _ -> fail "epoch list entry not a string")
           items)
  | "error" -> Error (json_str j "message")
  | kind -> fail "bad response kind %S" kind

(* --- query-language front end ------------------------------------------- *)

(* The positional syntax shared by [webdep query] (one-shot and
   [--connect] client): layer and country are words, k is a count, and
   delta optionally names an epoch range (defaulting to the paper's
   2023→2025 pair). *)
let parse_query ~epoch words =
  let epoch = canonical_epoch epoch in
  let layer s =
    match layer_of_name s with
    | Some l -> Ok l
    | None -> Result.Error (Printf.sprintf "unknown layer %S (hosting|dns|ca|tld)" s)
  in
  let int_arg what s =
    match int_of_string_opt s with
    | Some k when k >= 1 && k <= 0xffff -> Ok k
    | _ -> Result.Error (Printf.sprintf "bad %s %S (want 1..65535)" what s)
  in
  let ( let* ) = Result.bind in
  match words with
  | [ "ping" ] -> Ok Ping
  | [ "shutdown" ] -> Ok Shutdown
  | [ "epochs" ] -> Ok Epochs
  | [ "score"; l; cc ] ->
      let* layer = layer l in
      Ok (Score { epoch; layer; country = String.uppercase_ascii cc })
  | [ "topk"; l; cc; k ] ->
      let* layer = layer l in
      let* k = int_arg "k" k in
      Ok (Top_shares { epoch; layer; country = String.uppercase_ascii cc; k })
  | [ "ranking"; l; k ] ->
      let* layer = layer l in
      let* k = int_arg "k" k in
      Ok (Ranking { epoch; layer; k })
  | [ "delta"; l; cc ] ->
      let* layer = layer l in
      Ok
        (Delta
           {
             layer;
             country = String.uppercase_ascii cc;
             old_epoch = World.epoch_name World.May_2023;
             new_epoch = World.epoch_name World.May_2025;
           })
  | [ "delta"; l; cc; old_e; new_e ] ->
      let* layer = layer l in
      Ok
        (Delta
           {
             layer;
             country = String.uppercase_ascii cc;
             old_epoch = canonical_epoch old_e;
             new_epoch = canonical_epoch new_e;
           })
  | _ ->
      Result.Error
        "usage: ping | epochs | score LAYER CC | topk LAYER CC K | \
         ranking LAYER K | delta LAYER CC [OLD_EPOCH NEW_EPOCH] | shutdown"

(* Human rendering shared by the one-shot CLI and the [--connect]
   client, so daemon answers are byte-identical to local ones. *)
let render resp =
  let b = Buffer.create 256 in
  (match resp with
  | Pong -> Buffer.add_string b "pong\n"
  | Scores { s; hhi; insularity } ->
      Buffer.add_string b
        (Printf.sprintf "S = %.6f, HHI = %.6f, insularity = %.1f%%\n" s hhi
           (100.0 *. insularity))
  | Shares shares ->
      List.iteri
        (fun i { provider; home; share } ->
          Buffer.add_string b
            (Printf.sprintf "%-3d %-28s [%s] %6.2f%%\n" (i + 1) provider home
               (100.0 *. share)))
        shares
  | Ranks ranks ->
      List.iteri
        (fun i (cc, s) ->
          Buffer.add_string b (Printf.sprintf "%-3d %-4s %10.4f\n" (i + 1) cc s))
        ranks
  | Deltas { old_epoch; new_epoch; old_s; new_s; delta } ->
      Buffer.add_string b
        (Printf.sprintf "%s %.6f -> %s %.6f, delta %+.6f\n" old_epoch old_s
           new_epoch new_s delta)
  | Overloaded -> Buffer.add_string b "overloaded\n"
  | Bye -> Buffer.add_string b "bye\n"
  | Draining -> Buffer.add_string b "draining\n"
  | Epoch_list epochs ->
      List.iter (fun e -> Buffer.add_string b (e ^ "\n")) epochs
  | Error msg -> Buffer.add_string b (Printf.sprintf "error: %s\n" msg));
  Buffer.contents b
