(* Batched dependence-query daemon.

   One select loop owns every connection: each iteration drains all the
   complete frames that arrived since the last one into an admission
   queue, answers up to [batch_max] of them as a single batch (one
   engine dispatch, one outbound write per connection — the Arakoon
   batched-store shape), and sheds the rest of the intake with an
   immediate [Overloaded] reply once the queue is past [max_queue], so
   tail latency stays bounded instead of queueing without limit.

   Batches go through a response cache keyed by the raw request payload
   under the state's world fingerprint (a state swap with a different
   fingerprint clears it); cache misses fan out over the shared
   [Webdep_par] pool when the batch is large enough to amortize the
   dispatch.  Per-request latency is observed through the
   [Metrics.Local] fast path and flushed once per batch, so the
   instrumentation cost per request is a few plain stores, not the
   shared histogram's atomic read-modify-writes. *)

module P = Protocol
module M = Webdep_obs.Metrics

let m_requests = M.counter "serve.requests"
let m_shed = M.counter "serve.shed"
let m_batches = M.counter "serve.batches"
let m_cache_hits = M.counter "serve.cache.hits"
let m_cache_misses = M.counter "serve.cache.misses"
let m_proto_errors = M.counter "serve.protocol_errors"
let m_conns = M.counter "serve.connections"
let m_conn_reset = M.counter "serve.conn.reset"
let m_conn_rejected = M.counter "serve.conn.rejected"
let m_drain_replies = M.counter "serve.drain.replies"

let latency_bounds =
  [| 1e-6; 2e-6; 5e-6; 1e-5; 2e-5; 5e-5; 1e-4; 2e-4; 5e-4; 1e-3; 2e-3; 5e-3;
     1e-2; 2e-2; 5e-2; 0.1; 0.25; 0.5; 1.0 |]

let size_bounds =
  [| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0; 512.0; 1024.0; 4096.0 |]

let h_latency = M.histogram ~bounds:latency_bounds "serve.latency_s"
let h_batch = M.histogram ~bounds:size_bounds "serve.batch_size"
let h_queue = M.histogram ~bounds:size_bounds "serve.queue_depth"

(* --- engine: cache + batched answers ------------------------------------ *)

type engine = {
  mutable state : State.t;
  cache : (string, string) Hashtbl.t;  (* request payload -> response payload *)
  par_threshold : int;
}

let engine ?(par_threshold = 64) state =
  { state; cache = Hashtbl.create 4096; par_threshold }

let invalidate e = Hashtbl.reset e.cache

(* Swap in a new state; the cache only survives when the new state's
   fingerprint matches the one its entries were computed under. *)
let set_state e state =
  if not (String.equal (State.fingerprint state) (State.fingerprint e.state)) then
    invalidate e;
  e.state <- state

let cache_size e = Hashtbl.length e.cache
let cacheable = function P.Shutdown -> false | _ -> true

let compute e payload =
  match P.decode_request payload with
  | Error msg ->
      M.incr m_proto_errors;
      (P.encode_response (P.Error msg), false)
  | Ok req ->
      let resp =
        try State.answer e.state req
        with exn -> P.Error (Printexc.to_string exn)
      in
      (P.encode_response resp, cacheable req)

(* Answer a batch of encoded requests, preserving order.  Cache hits are
   table lookups; misses are computed on the [Webdep_par] pool when
   numerous enough, which keeps answers byte-identical at any --jobs
   because [State.answer] is pure and [Webdep_par.map] preserves
   order. *)
let answer_batch e payloads =
  let arr = Array.of_list payloads in
  let n = Array.length arr in
  let out = Array.make n "" in
  let misses = ref [] in
  for i = n - 1 downto 0 do
    match Hashtbl.find_opt e.cache arr.(i) with
    | Some r ->
        M.incr m_cache_hits;
        out.(i) <- r
    | None -> misses := i :: !misses
  done;
  (match !misses with
  | [] -> ()
  | misses ->
      M.incr ~by:(List.length misses) m_cache_misses;
      let results =
        if List.length misses >= e.par_threshold && Webdep_par.jobs () > 1 then
          Webdep_par.map (fun i -> compute e arr.(i)) misses
        else List.map (fun i -> compute e arr.(i)) misses
      in
      List.iter2
        (fun i (r, cache_it) ->
          out.(i) <- r;
          if cache_it then Hashtbl.replace e.cache arr.(i) r)
        misses results);
  Array.to_list out

let answer_payload e payload = List.hd (answer_batch e [ payload ])

(* --- server configuration ----------------------------------------------- *)

type config = {
  listen : string;  (* Unix-socket path, or "tcp:PORT" for loopback TCP *)
  max_queue : int;  (* admission-queue depth; past it requests are shed *)
  batch_max : int;  (* requests answered per batch *)
  par_threshold : int;  (* cache misses per batch before pool fan-out *)
  drain_delay_s : float;  (* artificial per-batch delay (tests only) *)
}

let config ?(max_queue = 1024) ?(batch_max = 256) ?(par_threshold = 64)
    ?(drain_delay_s = 0.0) listen =
  if max_queue < 1 then invalid_arg "Server.config: max_queue must be >= 1";
  if batch_max < 1 then invalid_arg "Server.config: batch_max must be >= 1";
  { listen; max_queue; batch_max; par_threshold; drain_delay_s }

(* --- connections --------------------------------------------------------- *)

(* Growable write buffer: [buf.[off..len)] is pending output. *)
type gbuf = { mutable buf : Bytes.t; mutable off : int; mutable len : int }

let gbuf_make n = { buf = Bytes.create n; off = 0; len = 0 }
let gbuf_avail g = g.len - g.off

let gbuf_reserve g n =
  if g.len + n > Bytes.length g.buf then begin
    if g.off > 0 then begin
      Bytes.blit g.buf g.off g.buf 0 (g.len - g.off);
      g.len <- g.len - g.off;
      g.off <- 0
    end;
    if g.len + n > Bytes.length g.buf then begin
      let cap = ref (max 4096 (Bytes.length g.buf)) in
      while g.len + n > !cap do
        cap := !cap * 2
      done;
      let nb = Bytes.create !cap in
      Bytes.blit g.buf 0 nb 0 g.len;
      g.buf <- nb
    end
  end

let gbuf_add g s =
  let n = String.length s in
  gbuf_reserve g n;
  Bytes.blit_string s 0 g.buf g.len n;
  g.len <- g.len + n

(* --- drain -------------------------------------------------------------- *)

(* Set from a signal handler (or a test) to ask the running server to
   drain: finish the queued batches, answer everything still buffered,
   reply [Draining] to new requests, then exit the loop cleanly.  A
   global atomic rather than loop state because signal handlers cannot
   reach into [run]'s closure; [run] re-arms it on entry so sequential
   servers in one process (the tests) start undrained. *)
let drain_requested = Atomic.make false
let request_drain () = Atomic.set drain_requested true

(* How long a drain may take before the loop gives up flushing. *)
let drain_grace_s = 5.0

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;  (* incoming partial frames, data always at 0 *)
  mutable rlen : int;
  out : gbuf;
  mutable json : bool;  (* JSON-lines debug mode (first byte was '{') *)
  mutable mode_known : bool;
  mutable alive : bool;  (* false: read side done, flush and close *)
  mutable err : bool;  (* died on a read/write error, not a clean EOF *)
}

type item = { c : conn; payload : string; arrival : float }

let read_chunk = 65536

let ensure_rbuf c n =
  if c.rlen + n > Bytes.length c.rbuf then begin
    let cap = ref (max read_chunk (Bytes.length c.rbuf)) in
    while c.rlen + n > !cap do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit c.rbuf 0 nb 0 c.rlen;
    c.rbuf <- nb
  end

let read_into c =
  let rec go () =
    ensure_rbuf c read_chunk;
    match Unix.read c.fd c.rbuf c.rlen read_chunk with
    | 0 -> c.alive <- false
    | n ->
        c.rlen <- c.rlen + n;
        if n = read_chunk then go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (_, _, _) ->
        c.err <- true;
        c.alive <- false
  in
  go ()

let write_pending c =
  let g = c.out in
  let rec go () =
    let n = gbuf_avail g in
    if n > 0 then
      match Unix.write c.fd g.buf g.off n with
      | w ->
          g.off <- g.off + w;
          if gbuf_avail g = 0 then begin
            g.off <- 0;
            g.len <- 0
          end
          else if w > 0 then go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (_, _, _) ->
          c.err <- true;
          c.alive <- false;
          g.off <- 0;
          g.len <- 0
  in
  go ()

(* --- the select loop ----------------------------------------------------- *)

let run ?on_ready ?(handle_signals = false) ?snapshot cfg state =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Atomic.set drain_requested false;
  let previous_handlers =
    if handle_signals then
      List.map
        (fun sg ->
          (sg, Sys.signal sg (Sys.Signal_handle (fun _ -> request_drain ()))))
        [ Sys.sigterm; Sys.sigint ]
    else []
  in
  let eng = engine ~par_threshold:cfg.par_threshold state in
  let addr = Addr.of_spec cfg.listen in
  let lfd = Unix.socket (Addr.domain addr) Unix.SOCK_STREAM 0 in
  Unix.set_nonblock lfd;
  (match addr with
  | Addr.Tcp _ -> Unix.setsockopt lfd Unix.SO_REUSEADDR true
  | Addr.Unix_path _ -> Addr.unlink_if_unix addr);
  Unix.bind lfd (Addr.sockaddr addr);
  Unix.listen lfd 128;
  (match on_ready with Some f -> f () | None -> ());
  let conns = ref [] in
  let q : item Queue.t = Queue.create () in
  let stop = ref false in
  let stop_deadline = ref infinity in
  let lat = M.Local.create h_latency in
  let shutdown_payload = P.encode_request P.Shutdown in
  let respond c payload =
    if c.json then begin
      let j =
        match P.decode_response payload with
        | Ok resp -> P.response_to_json resp
        | Error msg -> P.response_to_json (P.Error msg)
      in
      gbuf_add c.out (Webdep_json.to_string j);
      gbuf_add c.out "\n"
    end
    else gbuf_add c.out (P.frame payload)
  in
  let enqueue c payload =
    if !stop then begin
      (* Draining: the request was read but will not be served; tell the
         client explicitly so its retry budget can move to the next
         attempt instead of timing out on silence. *)
      M.incr m_drain_replies;
      respond c (P.encode_response P.Draining)
    end
    else if Queue.length q >= cfg.max_queue then begin
      M.incr m_shed;
      respond c (P.encode_response P.Overloaded)
    end
    else Queue.add { c; payload; arrival = Unix.gettimeofday () } q
  in
  let extract_binary c =
    match P.parse_frames c.rbuf c.rlen with
    | payloads, consumed ->
        if consumed > 0 then begin
          Bytes.blit c.rbuf consumed c.rbuf 0 (c.rlen - consumed);
          c.rlen <- c.rlen - consumed
        end;
        List.iter (fun payload -> enqueue c payload) payloads
    | exception P.Protocol_error msg ->
        (* A corrupt length prefix cannot be resynchronized: answer once
           and drop the connection after the flush. *)
        M.incr m_proto_errors;
        M.incr m_conn_rejected;
        respond c (P.encode_response (P.Error msg));
        c.rlen <- 0;
        c.alive <- false
  in
  let extract_json c =
    let pos = ref 0 and consumed = ref 0 in
    while !pos < c.rlen do
      if Bytes.get c.rbuf !pos = '\n' then begin
        let line = Bytes.sub_string c.rbuf !consumed (!pos - !consumed) in
        let line = String.trim line in
        (if String.length line > 0 then
           match P.request_of_json_string line with
           | Ok req -> enqueue c (P.encode_request req)
           | Error msg ->
               M.incr m_proto_errors;
               respond c (P.encode_response (P.Error msg)));
        consumed := !pos + 1
      end;
      incr pos
    done;
    if !consumed > 0 then begin
      Bytes.blit c.rbuf !consumed c.rbuf 0 (c.rlen - !consumed);
      c.rlen <- c.rlen - !consumed
    end
  in
  let extract c =
    if c.rlen > 0 then begin
      if not c.mode_known then begin
        c.json <- Bytes.get c.rbuf 0 = '{';
        c.mode_known <- true
      end;
      if c.json then extract_json c else extract_binary c
    end
  in
  let accept_loop () =
    let continue = ref true in
    while !continue do
      match Unix.accept lfd with
      | fd, _ ->
          Unix.set_nonblock fd;
          M.incr m_conns;
          conns :=
            { fd;
              rbuf = Bytes.create read_chunk;
              rlen = 0;
              out = gbuf_make 4096;
              json = false;
              mode_known = false;
              alive = true;
              err = false }
            :: !conns
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          continue := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  let process_batch () =
    if not (Queue.is_empty q) then begin
      M.observe h_queue (float_of_int (Queue.length q));
      if cfg.drain_delay_s > 0.0 then ignore (Unix.select [] [] [] cfg.drain_delay_s);
      let items = ref [] in
      let k = ref 0 in
      while !k < cfg.batch_max && not (Queue.is_empty q) do
        items := Queue.pop q :: !items;
        incr k
      done;
      let items = List.rev !items in
      M.incr m_batches;
      M.observe h_batch (float_of_int (List.length items));
      let replies = answer_batch eng (List.map (fun it -> it.payload) items) in
      let now = Unix.gettimeofday () in
      List.iter2
        (fun it reply ->
          respond it.c reply;
          M.Local.observe lat (now -. it.arrival);
          if String.equal it.payload shutdown_payload then begin
            stop := true;
            stop_deadline := now +. 1.0
          end)
        items replies;
      M.incr ~by:(List.length items) m_requests;
      M.Local.flush lat
    end
  in
  let close_conn c =
    (* The single close site: every removal path funnels through here,
       so a dead connection can neither leak its fd nor be counted
       twice.  Unconsumed partial bytes at close mean the peer vanished
       (or tore a frame) mid-message. *)
    if c.err || c.rlen > 0 then M.incr m_conn_reset;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let finished () =
    !stop && Queue.is_empty q
    && List.for_all (fun c -> gbuf_avail c.out = 0) !conns
  in
  let loop () =
    while (not (finished ())) && Unix.gettimeofday () < !stop_deadline do
      (if Atomic.get drain_requested && not !stop then begin
         (* Graceful drain: stop accepting, answer what is queued or
            still readable (those get [Draining]), flush, exit. *)
         stop := true;
         stop_deadline := Unix.gettimeofday () +. drain_grace_s
       end);
      let rds =
        (* Keep reading established connections while draining so late
           requests are answered with [Draining] instead of silence;
           only the listener goes quiet. *)
        (if !stop then [] else [ lfd ])
        @ List.filter_map (fun c -> if c.alive then Some c.fd else None) !conns
      in
      let wrs = List.filter_map (fun c -> if gbuf_avail c.out > 0 then Some c.fd else None) !conns in
      let timeout = if Queue.is_empty q then 0.1 else 0.0 in
      let readable, _, _ =
        if rds = [] && wrs = [] && not (finished ()) then begin
          if timeout > 0.0 then ignore (Unix.select [] [] [] timeout);
          ([], [], [])
        end
        else
          try Unix.select rds wrs [] timeout
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if (not !stop) && List.memq lfd readable then accept_loop ();
      List.iter
        (fun c ->
          if c.alive && List.memq c.fd readable then begin
            read_into c;
            extract c
          end)
        !conns;
      process_batch ();
      List.iter (fun c -> if gbuf_avail c.out > 0 then write_pending c) !conns;
      conns :=
        List.filter
          (fun c ->
            if (not c.alive) && gbuf_avail c.out = 0 then begin
              close_conn c;
              false
            end
            else true)
          !conns
    done
  in
  (* Whatever takes the loop down — clean drain, shutdown request or an
     unexpected exception — every fd is closed, the socket path is
     unlinked and signal handlers are restored. *)
  Fun.protect
    ~finally:(fun () ->
      List.iter close_conn !conns;
      conns := [];
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      Addr.unlink_if_unix addr;
      List.iter (fun (sg, h) -> Sys.set_signal sg h) previous_handlers)
    loop;
  (* Reached only on a clean exit: persist the warm state so the next
     start skips the two-epoch measurement sweep.  Best-effort — a full
     disk must not turn a clean drain into a crash. *)
  match snapshot with
  | None -> ()
  | Some path -> (
      try
        Snapshot.save ~path ~fingerprint:(State.fingerprint eng.state)
          (State.datasets eng.state)
      with
      | Sys_error msg ->
          Printf.eprintf "webdep serve: snapshot write failed: %s\n%!" msg
      | Unix.Unix_error (e, _, _) ->
          Printf.eprintf "webdep serve: snapshot write failed: %s\n%!"
            (Unix.error_message e))
