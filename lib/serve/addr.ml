(* Listen / connect address specs shared by the daemon and its clients:
   "tcp:PORT" is loopback TCP, anything else is a Unix-domain socket
   path. *)

type t = Unix_path of string | Tcp of int

let of_spec spec =
  if String.length spec > 4 && String.equal (String.sub spec 0 4) "tcp:" then
    match int_of_string_opt (String.sub spec 4 (String.length spec - 4)) with
    | Some port when port > 0 && port < 65536 -> Tcp port
    | _ -> invalid_arg (Printf.sprintf "bad tcp address spec %S" spec)
  else Unix_path spec

let domain = function Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET

let sockaddr = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let unlink_if_unix = function
  | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
  | Tcp _ -> ()
