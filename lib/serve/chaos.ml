(* Wire-level chaos client: sends one request per connection, with the
   mischief [Webdep_faults.Wire] planned for that request key.

   This is the client half of the chaos harness: the *server* under
   test is completely unaware, which is the point — every verdict is a
   pure hash of (seed, key), so a chaos run replays identically and the
   taxonomy of outcomes is comparable across runs and machines.

   The contract being exercised, per action:
   - [Clean], [Partial_write], [Delayed]: the server must answer, and
     the answer must be byte-identical to [State.answer] — dribbled or
     delayed bytes are a reassembly test, not an error.
   - [Torn_frame], [Reset_mid_frame]: no reply is owed; the server must
     drop the connection without crashing, leaking the fd, or
     disturbing its neighbours.
   - [Garbage_prefix]: the length prefix is corrupt by construction;
     the server owes at most a protocol [Error] before closing.  *)

module P = Protocol
module W = Webdep_faults.Wire
module FP = Webdep_faults.Fault_plan

(* What one chaotic call produced.  [Injected] means the harness itself
   sabotaged the exchange and no reply was owed. *)
type outcome =
  | Reply of P.response
  | Injected
  | Refused of string  (* connect failed — server down or restarting *)
  | Broken of string  (* reply owed but not delivered correctly *)

let outcome_name = function
  | Reply _ -> "reply"
  | Injected -> "injected"
  | Refused _ -> "refused"
  | Broken _ -> "broken"

(* Deliver [s] in deterministic 1..3-byte dribbles. *)
let write_dribble plan ~key fd s =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      let n =
        min (1 + FP.pick_int plan "wire_chunk" (key ^ "#" ^ string_of_int off) 3)
          (len - off)
      in
      Client.write_all fd (String.sub s off n);
      go (off + n)
    end
  in
  go 0

(* Abort with an RST rather than a FIN: linger 0 discards the queue. *)
let reset fd =
  (try Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0)
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* One chaotic request.  Returns the action taken and the outcome. *)
let call plan ~key spec req =
  let act = W.action plan ~key in
  let fr = P.frame (P.encode_request req) in
  match Client.connect ~attempts:1 spec with
  | exception Unix.Unix_error (e, _, _) ->
      (act, Refused (Unix.error_message e))
  | cl ->
      let fd = cl.Client.fd in
      let recv_reply () =
        match Client.recv cl with
        | resp -> Reply resp
        | exception P.Protocol_error msg -> Broken msg
        | exception Unix.Unix_error (e, _, _) -> Broken (Unix.error_message e)
      in
      let finish r =
        Client.close cl;
        r
      in
      let out =
        try
          match act with
          | W.Clean ->
              Client.write_all fd fr;
              finish (recv_reply ())
          | W.Partial_write ->
              write_dribble plan ~key fd fr;
              finish (recv_reply ())
          | W.Delayed ->
              let cut = W.cut_point plan ~key ~len:(String.length fr) in
              Client.write_all fd (String.sub fr 0 cut);
              Unix.sleepf 0.005;
              Client.write_all fd (String.sub fr cut (String.length fr - cut));
              finish (recv_reply ())
          | W.Torn_frame ->
              let cut = W.cut_point plan ~key ~len:(String.length fr) in
              Client.write_all fd (String.sub fr 0 cut);
              finish Injected
          | W.Reset_mid_frame ->
              let cut = W.cut_point plan ~key ~len:(String.length fr) in
              Client.write_all fd (String.sub fr 0 cut);
              reset fd;
              Injected
          | W.Garbage_prefix -> (
              let glen = 4 + FP.pick_int plan "wire_glen" key 12 in
              Client.write_all fd (W.garbage plan ~key ~len:glen);
              (* The server owes at most an [Error] before it hangs up;
                 silence-then-close is also acceptable. *)
              match Client.recv cl with
              | P.Error _ -> finish Injected
              | resp ->
                  finish
                    (Broken
                       (Printf.sprintf "garbage prefix answered with %s"
                          (String.trim (P.render resp))))
              | exception P.Protocol_error _ -> finish Injected
              | exception Unix.Unix_error _ -> finish Injected)
        with
        | Unix.Unix_error (e, _, _) -> (
            (* EPIPE/ECONNRESET while we are sabotaging the stream is
               expected collateral; during a clean exchange it is not. *)
            match act with
            | W.Clean | W.Partial_write | W.Delayed ->
                finish (Broken (Unix.error_message e))
            | _ -> finish Injected)
        | P.Protocol_error msg -> finish (Broken msg)
      in
      (act, out)
