(* Process supervision for the serving daemon.

   [supervise] forks the server into a child process and restarts it on
   abnormal exit with exponential backoff (reusing the [Retry] backoff
   curve, jitter included), so a crashed daemon comes back by itself —
   and, combined with a [--snapshot] path, comes back *warm*.  A
   crash-loop detector bounds the damage: more than [restart_limit]
   abnormal exits inside a sliding [window_s] window means the crash is
   deterministic (bad flags, corrupt state, port taken) and restarting
   is noise — the supervisor gives up with a distinct exit code.

   Fork safety: [supervise] must be called before any domain is spawned
   (OCaml 5 forbids forking a process with running domains), which is
   why the CLI forks *first* and lets the child build the serving state.
   The decision core [decide] is pure so the crash-loop policy is unit
   testable without forking anything. *)

module Retry = Webdep_faults.Retry

let m_restarts = Webdep_obs.Metrics.counter "supervisor.restarts"
let m_give_ups = Webdep_obs.Metrics.counter "supervisor.give_ups"

(* Exit code of the supervisor when it detects a crash loop and stops
   restarting.  Distinct from the bench-regression (3), heap-budget (4)
   and retry-exhausted (5) codes. *)
let give_up_exit_code = 6

type policy = {
  restart_limit : int;  (* abnormal exits tolerated within the window *)
  window_s : float;  (* sliding crash-loop window *)
  backoff : Retry.policy;  (* delay curve between restarts *)
}

let default_policy =
  {
    restart_limit = 5;
    window_s = 30.0;
    backoff =
      {
        Retry.max_attempts = max_int;
        base_backoff_ms = 100.0;
        multiplier = 2.0;
        jitter_ms = 50.0;
        budget_ms = 0.0;
      };
  }

type decision = Restart of float  (** delay in seconds *) | Give_up

(* Pure decision core: given the wall clock and the timestamps of past
   abnormal exits (most recent first, the one that just happened
   included), restart after a backoff or give up.  The backoff attempt
   number is the count of *recent* failures, so a server that crashed
   twice yesterday and once now backs off like a first crash, not a
   third. *)
let decide ?(policy = default_policy) ~now failures =
  let recent = List.filter (fun t -> now -. t <= policy.window_s) failures in
  let n = List.length recent in
  if n > policy.restart_limit then Give_up
  else
    Restart
      (Retry.backoff_ms policy.backoff ~key:"supervisor" ~attempt:(max 1 n)
      /. 1000.0)

let status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED sg -> Printf.sprintf "signal %d" sg
  | Unix.WSTOPPED sg -> Printf.sprintf "stopped %d" sg

(* Fork [child] and babysit it.  Returns the exit code the supervisor
   itself should exit with: 0 when the child ends cleanly (normal drain
   or shutdown request), [give_up_exit_code] on a crash loop.  SIGTERM
   and SIGINT are forwarded to the child so `kill <supervisor>` drains
   the server instead of orphaning it. *)
let supervise ?(policy = default_policy) child =
  let child_pid = ref 0 in
  let forward sg = if !child_pid > 0 then try Unix.kill !child_pid sg with Unix.Unix_error _ -> () in
  List.iter
    (fun sg -> Sys.set_signal sg (Sys.Signal_handle forward))
    [ Sys.sigterm; Sys.sigint ];
  let rec loop failures =
    (match Unix.fork () with
    | 0 ->
        (* The child must never return into the supervisor loop. *)
        (try
           child ();
           Stdlib.exit 0
         with e ->
           Printf.eprintf "webdep serve: %s\n%!" (Printexc.to_string e);
           Stdlib.exit 70)
    | pid -> child_pid := pid);
    let rec wait () =
      try snd (Unix.waitpid [] !child_pid)
      with Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
    in
    match wait () with
    | Unix.WEXITED 0 -> 0
    | status -> (
        let now = Unix.gettimeofday () in
        let failures = now :: failures in
        match decide ~policy ~now failures with
        | Give_up ->
            Webdep_obs.Metrics.incr m_give_ups;
            Printf.eprintf
              "webdep serve: child crash-looping (%s; %d abnormal exits in \
               %.0fs), giving up\n\
               %!"
              (status_string status)
              (List.length
                 (List.filter (fun t -> now -. t <= policy.window_s) failures))
              policy.window_s;
            give_up_exit_code
        | Restart delay ->
            Webdep_obs.Metrics.incr m_restarts;
            Printf.eprintf
              "webdep serve: child died (%s), restarting in %.2fs\n%!"
              (status_string status) delay;
            Unix.sleepf delay;
            loop failures)
  in
  loop []
