(** The paper's published per-country centralization scores — Appendix F,
    Tables 5 (hosting), 6 (DNS), 7 (CA), and 8 (TLD).

    These are the ground truth the synthetic world is calibrated against
    and that EXPERIMENTS.md compares measured values to.  Each table lists
    (country code, 𝒮) in the paper's rank order (most centralized
    first). *)

type layer = Hosting | Dns | Ca | Tld

val layer_name : layer -> string
val all_layers : layer list

val table : layer -> (string * float) list
(** Ranked [(country code, score)] rows for a layer; 150 entries. *)

val score : layer -> string -> float option
(** Score of a country code in a layer. *)

val score_exn : layer -> string -> float

val rank : layer -> string -> int option
(** 1-based paper rank (1 = most centralized). *)

val mean : layer -> float
(** Mean score across the 150 countries (the paper's 𝒮̄). *)

val scores_in_country_order : layer -> string list -> float array
(** Scores aligned to a caller-supplied country order, for correlation
    against measured values.  @raise Not_found if a code is missing. *)
