let hosting_top_provider_share =
  [ ("TH", 0.60); ("US", 0.29); ("IR", 0.14); ("BR", 0.36) ]

let hosting_insularity =
  [ ("US", 0.921); ("IR", 0.648); ("CZ", 0.545); ("RU", 0.511); ("TM", 0.04) ]

let cross_country_hosting =
  [ ("TM", "RU", 0.33); ("TJ", "RU", 0.23); ("KG", "RU", 0.22); ("KZ", "RU", 0.21);
    ("BY", "RU", 0.18); ("UA", "RU", 0.02); ("LT", "RU", 0.03); ("EE", "RU", 0.05);
    ("SK", "CZ", 0.257); ("AF", "IR", 0.20); ("RE", "FR", 0.36); ("GP", "FR", 0.34);
    ("MQ", "FR", 0.35); ("BF", "FR", 0.21); ("CI", "FR", 0.18); ("ML", "FR", 0.18) ]

let providers_for_90pct_max = 206
let regional_provider_share_range = (0.12, 0.68)

let rho_xlgp_centralization = 0.90
let rho_lgp_centralization = 0.19
let rho_lrp_centralization = -0.72
let rho_insularity_centralization = -0.61
let rho_hosting_tld_insularity = 0.70
let rho_vantage_points = 0.96
let rho_longitudinal = 0.98

(* Table 1. *)
let hosting_classes =
  [ ("XL-GP", 2); ("L-GP", 6); ("L-GP (R)", 2); ("M-GP", 22); ("S-GP", 73);
    ("L-RP", 174); ("S-RP", 587); ("XS-RP", 11548) ]

(* Table 2. *)
let dns_classes =
  [ ("XL-GP", 2); ("L-GP", 10); ("L-GP (R)", 2); ("M-GP", 17); ("S-GP", 78);
    ("L-RP", 273); ("S-RP", 578); ("XS-RP", 9049) ]

(* Table 3. *)
let ca_classes =
  [ ("L-GP", 7); ("M-GP", 2); ("L-RP", 11); ("S-RP", 10); ("XS-RP", 15) ]

let hosting_cluster_count = 305

let ca_total = 45
let ca_top7_share = 0.98
let ca_mean_centralization = 0.2007
let ca_centralization_variance = 0.0007
let ca_insular_countries = 24

let longitudinal_jaccard_mean = 0.37
let longitudinal_jaccard_ru = 0.4
let brazil_old_new = (0.1446, 0.2354)
let russia_old_new = (0.0554, 0.0499)
let cloudflare_mean_increase = 0.038

let hosting_mean_centralization = 0.1429
let hosting_centralization_variance = 0.003
let dns_mean_centralization = 0.1379
let tld_mean_centralization = 0.3262
