(** Headline facts from the paper's prose, used (a) to calibrate the
    synthetic world and (b) as expected values in EXPERIMENTS.md and the
    shape-assertion tests.  Percentages are fractions in [0,1]. *)

(** {1 §5 Hosting} *)

val hosting_top_provider_share : (string * float) list
(** Known top-provider (Cloudflare unless noted) market shares:
    TH 0.60, US 0.29, IR 0.14, BR(2023) 0.36. *)

val hosting_insularity : (string * float) list
(** Known insularity values: US 0.921, IR 0.648, CZ 0.545, RU 0.511,
    TM 0.04. *)

val cross_country_hosting : (string * string * float) list
(** (dependent country, provider home country, share): TM→RU 0.33,
    TJ→RU 0.23, KG→RU 0.22, KZ→RU 0.21, BY→RU 0.18, UA→RU 0.02,
    LT→RU 0.03, EE→RU 0.05, SK→CZ 0.257, AF→IR 0.20, RE→FR 0.36,
    GP→FR 0.34, MQ→FR 0.35, BF→FR 0.21, CI→FR 0.18, ML→FR 0.18. *)

val providers_for_90pct_max : int
(** "90% of websites are hosted by fewer than 206 providers in every
    country." *)

val regional_provider_share_range : float * float
(** Countries' regional-provider usage spans 12% (TT) to 68% (IR). *)

(** {1 §5.2 / §6.2 / §7 correlations (hosting layer vs 𝒮 across countries)} *)

val rho_xlgp_centralization : float  (* 0.90 *)
val rho_lgp_centralization : float  (* 0.19 *)
val rho_lrp_centralization : float  (* −0.72 *)
val rho_insularity_centralization : float  (* −0.61 *)
val rho_hosting_tld_insularity : float  (* 0.70 *)
val rho_vantage_points : float  (* 0.96 (§3.4) *)
val rho_longitudinal : float  (* 0.98 (§5.4) *)

(** {1 Provider class tables (Tables 1–3): class name, count} *)

val hosting_classes : (string * int) list
val dns_classes : (string * int) list
val ca_classes : (string * int) list

val hosting_cluster_count : int
(** Affinity propagation yields 305 raw clusters on hosting providers. *)

(** {1 §7 Certificate authorities} *)

val ca_total : int  (* 45 CAs observed in the dataset *)
val ca_top7_share : float  (* seven CAs account for ~98% of websites *)
val ca_mean_centralization : float  (* 𝒮̄ = 0.2007 *)
val ca_centralization_variance : float  (* var = 0.0007 *)
val ca_insular_countries : int  (* only 24 countries use any local CA *)

(** {1 §5.4 Longitudinal}  *)

val longitudinal_jaccard_mean : float  (* mean toplist Jaccard ≈ 0.37 *)
val longitudinal_jaccard_ru : float  (* Russia ≈ 0.4 *)
val brazil_old_new : float * float  (* 𝒮 0.1446 → 0.2354 *)
val russia_old_new : float * float  (* 𝒮 0.0554 → 0.0499 *)
val cloudflare_mean_increase : float  (* +3.8 %pts average *)

(** {1 Global means} *)

val hosting_mean_centralization : float  (* 𝒮̄ = 0.1429 *)
val hosting_centralization_variance : float  (* var = 0.003 *)
val dns_mean_centralization : float  (* 𝒮̄ = 0.1379 *)
val tld_mean_centralization : float  (* 𝒮̄ = 0.3262 *)
