type continent = Africa | Asia | Europe | North_america | Oceania | South_america

type subregion =
  | Caribbean
  | Central_america
  | Central_asia
  | Eastern_africa
  | Eastern_asia
  | Eastern_europe
  | Middle_africa
  | Northern_africa
  | Northern_america
  | Northern_europe
  | Oceania_subregion
  | South_america_subregion
  | South_eastern_asia
  | Southern_africa
  | Southern_asia
  | Southern_europe
  | Western_africa
  | Western_asia
  | Western_europe

let continent_of_subregion = function
  | Eastern_africa | Middle_africa | Northern_africa | Southern_africa | Western_africa ->
      Africa
  | Central_asia | Eastern_asia | South_eastern_asia | Southern_asia | Western_asia -> Asia
  | Eastern_europe | Northern_europe | Southern_europe | Western_europe -> Europe
  | Caribbean | Central_america | Northern_america -> North_america
  | Oceania_subregion -> Oceania
  | South_america_subregion -> South_america

let continent_code = function
  | Africa -> "AF"
  | Asia -> "AS"
  | Europe -> "EU"
  | North_america -> "NA"
  | Oceania -> "OC"
  | South_america -> "SA"

let continent_name = function
  | Africa -> "Africa"
  | Asia -> "Asia"
  | Europe -> "Europe"
  | North_america -> "North America"
  | Oceania -> "Oceania"
  | South_america -> "South America"

let subregion_name = function
  | Caribbean -> "Caribbean"
  | Central_america -> "Central America"
  | Central_asia -> "Central Asia"
  | Eastern_africa -> "Eastern Africa"
  | Eastern_asia -> "Eastern Asia"
  | Eastern_europe -> "Eastern Europe"
  | Middle_africa -> "Middle Africa"
  | Northern_africa -> "Northern Africa"
  | Northern_america -> "Northern America"
  | Northern_europe -> "Northern Europe"
  | Oceania_subregion -> "Oceania"
  | South_america_subregion -> "South America"
  | South_eastern_asia -> "South-eastern Asia"
  | Southern_africa -> "Southern Africa"
  | Southern_asia -> "Southern Asia"
  | Southern_europe -> "Southern Europe"
  | Western_africa -> "Western Africa"
  | Western_asia -> "Western Asia"
  | Western_europe -> "Western Europe"

let all_continents = [ Africa; Asia; Europe; North_america; Oceania; South_america ]

let all_subregions =
  [ Caribbean; Central_america; Central_asia; Eastern_africa; Eastern_asia; Eastern_europe;
    Middle_africa; Northern_africa; Northern_america; Northern_europe; Oceania_subregion;
    South_america_subregion; South_eastern_asia; Southern_africa; Southern_asia;
    Southern_europe; Western_africa; Western_asia; Western_europe ]

let continent_of_code = function
  | "AF" -> Some Africa
  | "AS" -> Some Asia
  | "EU" -> Some Europe
  | "NA" -> Some North_america
  | "OC" -> Some Oceania
  | "SA" -> Some South_america
  | _ -> None
