(** The 150 countries of the paper's dataset (Appendix E, Table 4).

    Each country is identified by its ISO 3166-1 alpha-2 code and carries
    the UN subregion / continent assignment the paper uses for regional
    aggregation.  The dataset also names a few provider home countries that
    are not in the 150-country toplist set (e.g. none — all provider HQs in
    the paper are within ISO space); [of_code] is total over the 150. *)

type t = {
  code : string;  (** ISO alpha-2, uppercase *)
  name : string;
  subregion : Region.subregion;
}

val all : t list
(** All 150 countries, ordered by code. *)

val count : int
(** [List.length all] = 150. *)

val of_code : string -> t option
(** Lookup by (case-insensitive) alpha-2 code among the 150. *)

val of_code_exn : string -> t
(** @raise Not_found if the code is not one of the 150. *)

val mem : string -> bool

val continent : t -> Region.continent

val in_subregion : Region.subregion -> t list
val in_continent : Region.continent -> t list

val ccTLD : t -> string
(** The country-code TLD, lowercase with leading dot (".de").  For the
    paper's TLD layer; UK maps to ".uk" (not ".gb"). *)
