type t = { code : string; name : string; subregion : Region.subregion }

(* Appendix E, Table 4: the 150 countries with >= 10K CrUX websites. *)
let raw : (string * string * Region.subregion) list =
  Region.
    [ ("AE", "United Arab Emirates", Western_asia);
      ("AF", "Afghanistan", Southern_asia);
      ("AL", "Albania", Southern_europe);
      ("AM", "Armenia", Western_asia);
      ("AO", "Angola", Middle_africa);
      ("AR", "Argentina", South_america_subregion);
      ("AT", "Austria", Western_europe);
      ("AU", "Australia", Oceania_subregion);
      ("AZ", "Azerbaijan", Western_asia);
      ("BA", "Bosnia and Herzegovina", Southern_europe);
      ("BD", "Bangladesh", Southern_asia);
      ("BE", "Belgium", Western_europe);
      ("BF", "Burkina Faso", Western_africa);
      ("BG", "Bulgaria", Eastern_europe);
      ("BH", "Bahrain", Western_asia);
      ("BJ", "Benin", Western_africa);
      ("BN", "Brunei Darussalam", South_eastern_asia);
      ("BO", "Bolivia", South_america_subregion);
      ("BR", "Brazil", South_america_subregion);
      ("BW", "Botswana", Southern_africa);
      ("BY", "Belarus", Eastern_europe);
      ("CA", "Canada", Northern_america);
      ("CD", "Congo", Middle_africa);
      ("CH", "Switzerland", Western_europe);
      ("CI", "C\xc3\xb4te d'Ivoire", Western_africa);
      ("CL", "Chile", South_america_subregion);
      ("CM", "Cameroon", Middle_africa);
      ("CO", "Colombia", South_america_subregion);
      ("CR", "Costa Rica", Central_america);
      ("CU", "Cuba", Caribbean);
      ("CY", "Cyprus", Western_asia);
      ("CZ", "Czechia", Eastern_europe);
      ("DE", "Germany", Western_europe);
      ("DK", "Denmark", Northern_europe);
      ("DO", "Dominican Republic", Caribbean);
      ("DZ", "Algeria", Northern_africa);
      ("EC", "Ecuador", South_america_subregion);
      ("EE", "Estonia", Northern_europe);
      ("EG", "Egypt", Northern_africa);
      ("ES", "Spain", Southern_europe);
      ("ET", "Ethiopia", Eastern_africa);
      ("FI", "Finland", Northern_europe);
      ("FR", "France", Western_europe);
      ("GA", "Gabon", Middle_africa);
      ("GB", "United Kingdom", Northern_europe);
      ("GE", "Georgia", Western_asia);
      ("GH", "Ghana", Western_africa);
      ("GP", "Guadeloupe", Caribbean);
      ("GR", "Greece", Southern_europe);
      ("GT", "Guatemala", Central_america);
      ("HK", "Hong Kong", Eastern_asia);
      ("HN", "Honduras", Central_america);
      ("HR", "Croatia", Southern_europe);
      ("HT", "Haiti", Caribbean);
      ("HU", "Hungary", Eastern_europe);
      ("ID", "Indonesia", South_eastern_asia);
      ("IE", "Ireland", Northern_europe);
      ("IL", "Israel", Western_asia);
      ("IN", "India", Southern_asia);
      ("IQ", "Iraq", Western_asia);
      ("IR", "Iran", Southern_asia);
      ("IS", "Iceland", Northern_europe);
      ("IT", "Italy", Southern_europe);
      ("JM", "Jamaica", Caribbean);
      ("JO", "Jordan", Western_asia);
      ("JP", "Japan", Eastern_asia);
      ("KE", "Kenya", Eastern_africa);
      ("KG", "Kyrgyzstan", Central_asia);
      ("KH", "Cambodia", South_eastern_asia);
      ("KR", "Korea", Eastern_asia);
      ("KW", "Kuwait", Western_asia);
      ("KZ", "Kazakhstan", Central_asia);
      ("LA", "Laos", South_eastern_asia);
      ("LB", "Lebanon", Western_asia);
      ("LK", "Sri Lanka", Southern_asia);
      ("LT", "Lithuania", Northern_europe);
      ("LU", "Luxembourg", Western_europe);
      ("LV", "Latvia", Northern_europe);
      ("LY", "Libya", Northern_africa);
      ("MA", "Morocco", Northern_africa);
      ("MD", "Moldova", Eastern_europe);
      ("ME", "Montenegro", Southern_europe);
      ("MG", "Madagascar", Eastern_africa);
      ("MK", "North Macedonia", Southern_europe);
      ("ML", "Mali", Western_africa);
      ("MM", "Myanmar", South_eastern_asia);
      ("MN", "Mongolia", Eastern_asia);
      ("MO", "Macao", Eastern_asia);
      ("MQ", "Martinique", Caribbean);
      ("MT", "Malta", Southern_europe);
      ("MU", "Mauritius", Eastern_africa);
      ("MV", "Maldives", Southern_asia);
      ("MW", "Malawi", Eastern_africa);
      ("MX", "Mexico", Central_america);
      ("MY", "Malaysia", South_eastern_asia);
      ("MZ", "Mozambique", Eastern_africa);
      ("NA", "Namibia", Southern_africa);
      ("NG", "Nigeria", Western_africa);
      ("NI", "Nicaragua", Central_america);
      ("NL", "Netherlands", Western_europe);
      ("NO", "Norway", Northern_europe);
      ("NP", "Nepal", Southern_asia);
      ("NZ", "New Zealand", Oceania_subregion);
      ("OM", "Oman", Western_asia);
      ("PA", "Panama", Central_america);
      ("PE", "Peru", South_america_subregion);
      ("PG", "Papua New Guinea", Oceania_subregion);
      ("PH", "Philippines", South_eastern_asia);
      ("PK", "Pakistan", Southern_asia);
      ("PL", "Poland", Eastern_europe);
      ("PR", "Puerto Rico", Caribbean);
      ("PS", "Palestine", Western_asia);
      ("PT", "Portugal", Southern_europe);
      ("PY", "Paraguay", South_america_subregion);
      ("QA", "Qatar", Western_asia);
      ("RE", "R\xc3\xa9union", Eastern_africa);
      ("RO", "Romania", Eastern_europe);
      ("RS", "Serbia", Southern_europe);
      ("RU", "Russia", Eastern_europe);
      ("RW", "Rwanda", Eastern_africa);
      ("SA", "Saudi Arabia", Western_asia);
      ("SD", "Sudan", Northern_africa);
      ("SE", "Sweden", Northern_europe);
      ("SG", "Singapore", South_eastern_asia);
      ("SI", "Slovenia", Southern_europe);
      ("SK", "Slovakia", Eastern_europe);
      ("SN", "Senegal", Western_africa);
      ("SO", "Somalia", Eastern_africa);
      ("SV", "El Salvador", Central_america);
      ("SY", "Syria", Western_asia);
      ("TG", "Togo", Western_africa);
      ("TH", "Thailand", South_eastern_asia);
      ("TJ", "Tajikistan", Central_asia);
      ("TM", "Turkmenistan", Central_asia);
      ("TN", "Tunisia", Northern_africa);
      ("TR", "Turkey", Western_asia);
      ("TT", "Trinidad and Tobago", Caribbean);
      ("TW", "Taiwan", Eastern_asia);
      ("TZ", "Tanzania", Eastern_africa);
      ("UA", "Ukraine", Eastern_europe);
      ("UG", "Uganda", Eastern_africa);
      ("US", "United States", Northern_america);
      ("UY", "Uruguay", South_america_subregion);
      ("UZ", "Uzbekistan", Central_asia);
      ("VE", "Venezuela", South_america_subregion);
      ("VN", "Viet Nam", South_eastern_asia);
      ("YE", "Yemen", Western_asia);
      ("ZA", "South Africa", Southern_africa);
      ("ZM", "Zambia", Eastern_africa);
      ("ZW", "Zimbabwe", Eastern_africa) ]

let all = List.map (fun (code, name, subregion) -> { code; name; subregion }) raw
let count = List.length all

let table =
  let tbl = Hashtbl.create 200 in
  List.iter (fun c -> Hashtbl.replace tbl c.code c) all;
  tbl

let of_code code = Hashtbl.find_opt table (String.uppercase_ascii code)

let of_code_exn code =
  match of_code code with Some c -> c | None -> raise Not_found

let mem code = Option.is_some (of_code code)

let continent c = Region.continent_of_subregion c.subregion

let in_subregion sr = List.filter (fun c -> c.subregion = sr) all
let in_continent ct = List.filter (fun c -> continent c = ct) all

let ccTLD c =
  match c.code with
  | "GB" -> ".uk"
  | code -> "." ^ String.lowercase_ascii code
