(** Continents and UN subregions as used in the paper's Appendix E. *)

type continent = Africa | Asia | Europe | North_america | Oceania | South_america

type subregion =
  | Caribbean
  | Central_america
  | Central_asia
  | Eastern_africa
  | Eastern_asia
  | Eastern_europe
  | Middle_africa
  | Northern_africa
  | Northern_america
  | Northern_europe
  | Oceania_subregion
  | South_america_subregion
  | South_eastern_asia
  | Southern_africa
  | Southern_asia
  | Southern_europe
  | Western_africa
  | Western_asia
  | Western_europe

val continent_of_subregion : subregion -> continent

val continent_code : continent -> string
(** Two-letter code as printed in the paper ("AF", "AS", "EU", "NA", "OC",
    "SA"). *)

val continent_name : continent -> string
val subregion_name : subregion -> string
(** Human-readable name ("South-eastern Asia"). *)

val all_continents : continent list
val all_subregions : subregion list

val continent_of_code : string -> continent option
