(* Reproduction harness: regenerates every table and figure of
   "Formalizing Dependence of Web Infrastructure" (SIGCOMM 2025) from the
   calibrated synthetic world, prints the same rows/series the paper
   reports (with the paper's value alongside where it quotes one), and
   finishes with Bechamel timings — one Test.make per table/figure — and
   the DESIGN.md ablations.

   Environment:
     WEBDEP_BENCH_C     toplist size per country (default 10000)
     WEBDEP_BENCH_SEED  world seed                (default 2024)
     WEBDEP_BENCH_JOBS  worker domains (also --jobs N / -j N on argv;
                        default: the machine's recommended domain count,
                        1 = the exact sequential path)
     WEBDEP_BENCH_SKIP_TIMINGS  set to skip the per-figure Bechamel
                        section (the kernels phase always runs)
     WEBDEP_BENCH_V     set to raise the Logs level to debug
     WEBDEP_BENCH_TRACE set to stream spans to the console
     WEBDEP_BENCH_OUT   output path (default BENCH_obs.json)
     WEBDEP_BENCH_PERFETTO  also export every span as a Chrome trace
                        file loadable in ui.perfetto.dev
     WEBDEP_BENCH_INJECT_SLEEP  "phase:seconds" — artificially slow one
                        phase, to exercise the regression gate end to end
     WEBDEP_BENCH_SCALE_CS  comma-separated toplist sizes for the scale
                        phase (default "300,2000"; the full paper sweep
                        is "300,2000,10000")
     WEBDEP_BENCH_SERVE_C   toplist size for the serve phase's warmed
                        store (default 300, the paper-scale floor)
     WEBDEP_BENCH_SERVE_N   total closed-loop queries in the serve
                        phase (default 40000)
     WEBDEP_BENCH_SERVE_CLIENTS  concurrent load-generator connections
                        (default: jobs clamped to [2,4])

   --compare BASELINE.json on argv diffs this run's phases against a
   saved baseline through the noise-aware gate (Webdep_prof.Regress) and
   exits 3 on a regression verdict.

   Every phase (world generation, measurement, each table/figure) runs
   inside a webdep_obs span; the per-phase seconds land in
   BENCH_obs.json alongside the counter/histogram registry, giving
   future PRs a machine-readable perf trajectory to diff against.

   Registry semantics: the "metrics" section of BENCH_obs.json is a
   snapshot taken right after the measurement sweep, so its counters
   describe the pipeline alone.  The registry is then RESET between
   phases ([Registry.reset] zeroes values in place; metric references
   stay valid), so the per-phase counters recorded under
   "phase_counters" reflect exactly what each table/figure consumed —
   under the seed's single accumulating registry a phase's deltas
   included every earlier phase's traffic. *)

module World = Webdep_worldgen.World
module Measure = Webdep_pipeline.Measure
module D = Webdep.Dataset
module Metrics = Webdep.Metrics
module R = Webdep.Regionalization
module Classify = Webdep.Classify
module Report = Webdep.Report
module Scores = Webdep_reference.Paper_scores
module Anecdotes = Webdep_reference.Anecdotes
module Correlation = Webdep_stats.Correlation
module Region = Webdep_geo.Region
module Country = Webdep_geo.Country

module Span = Webdep_obs.Span
module Obs_metrics = Webdep_obs.Metrics
module Json = Webdep_obs.Json

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let c = env_int "WEBDEP_BENCH_C" 10_000
let seed = env_int "WEBDEP_BENCH_SEED" 2024

(* --jobs N / -j N / --jobs=N on argv, or WEBDEP_BENCH_JOBS. *)
let requested_jobs =
  let from_argv =
    let argv = Sys.argv in
    let found = ref None in
    Array.iteri
      (fun i arg ->
        if (arg = "--jobs" || arg = "-j") && i + 1 < Array.length argv then
          found := int_of_string_opt argv.(i + 1)
        else if String.length arg > 7 && String.sub arg 0 7 = "--jobs=" then
          found := int_of_string_opt (String.sub arg 7 (String.length arg - 7)))
      argv;
    !found
  in
  match from_argv with
  | Some _ as j -> j
  | None -> Option.bind (Sys.getenv_opt "WEBDEP_BENCH_JOBS") int_of_string_opt

(* --compare BASELINE.json / --compare=BASELINE.json on argv. *)
let compare_baseline =
  let argv = Sys.argv in
  let found = ref None in
  Array.iteri
    (fun i arg ->
      if arg = "--compare" && i + 1 < Array.length argv then found := Some argv.(i + 1)
      else if String.length arg > 10 && String.sub arg 0 10 = "--compare=" then
        found := Some (String.sub arg 10 (String.length arg - 10)))
    argv;
  !found

(* WEBDEP_BENCH_INJECT_SLEEP="phase:seconds" slows exactly that phase —
   the regression gate's end-to-end smoke test: with a sleep injected the
   --compare verdict must turn red. *)
let injected_sleep =
  match Sys.getenv_opt "WEBDEP_BENCH_INJECT_SLEEP" with
  | None -> None
  | Some spec -> (
      match String.index_opt spec ':' with
      | Some i -> (
          let name = String.sub spec 0 i in
          match
            float_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1))
          with
          | Some s when s > 0.0 -> Some (name, s)
          | _ -> None)
      | None -> None)

let () =
  match requested_jobs with
  | Some j when j >= 1 -> Webdep_par.set_jobs j
  | Some j ->
      Printf.eprintf "webdep bench: --jobs must be >= 1 (got %d)\n" j;
      exit 124
  | None -> ()

let jobs = Webdep_par.jobs ()

(* A properly-installed reporter so library-level Logs calls are visible
   (the seed's Logs.debug in Measure printed nothing). *)
let () =
  let level =
    if Sys.getenv_opt "WEBDEP_BENCH_V" <> None then Logs.Debug else Logs.Warning
  in
  Webdep_obs.Reporter.setup ~level ();
  let sinks =
    (if Sys.getenv_opt "WEBDEP_BENCH_TRACE" <> None then [ Webdep_obs.Sink.console () ]
     else [])
    @
    match Sys.getenv_opt "WEBDEP_BENCH_PERFETTO" with
    | Some path when path <> "" ->
        at_exit Webdep_obs.Sink.flush;
        [ Webdep_prof.Trace.sink path ]
    | _ -> []
  in
  match sinks with
  | [] -> ()
  | s :: rest -> Webdep_obs.Sink.set (List.fold_left Webdep_obs.Sink.tee s rest)

let section id title =
  Printf.printf "\n================================================================\n";
  Printf.printf "== %s: %s\n" id title;
  Printf.printf "================================================================\n"

let pct x = 100.0 *. x

(* --- the measured world ------------------------------------------------- *)

(* Per-phase wall-clock seconds, recorded bench-locally because the
   registry (where the span histograms live) is reset between phases.
   Minor-heap allocation (Gc.minor_words deltas) rides along: it is the
   stable, scheduler-independent companion to the noisy wall clock, so
   allocation regressions show up in the baseline diff even when timing
   jitter hides them. *)
let recorded_phases : (string * float) list ref = ref []
let record_phase name seconds = recorded_phases := (name, seconds) :: !recorded_phases

let recorded_minor_words : (string * float) list ref = ref []

let record_minor_words name words =
  recorded_minor_words := (name, words) :: !recorded_minor_words

let () =
  Printf.printf "webdep bench: c=%d seed=%d jobs=%d — generating and measuring...\n%!" c seed
    jobs

let world_minor_before = Gc.minor_words ()
let world, world_seconds = Span.timed ~name:"bench.world_create" (fun () -> World.create ~c ~seed ())

let () =
  record_phase "world_create" world_seconds;
  record_minor_words "world_create" (Gc.minor_words () -. world_minor_before)

let measure_minor_before = Gc.minor_words ()
let ds, measure_seconds = Span.timed ~name:"bench.measure_all" (fun () -> Measure.measure_all world)

let () =
  record_phase "measure_all" measure_seconds;
  record_minor_words "measure_all" (Gc.minor_words () -. measure_minor_before)

let () =
  Printf.printf "measured %d (country, site) records in %.1fs\n%!" (D.size ds) measure_seconds;
  Format.printf "%a%!" Webdep.Toolkit.pp (Webdep.Toolkit.summarize ds)

(* The measurement pipeline's registry state, before any per-phase reset
   wipes it: this is what lands under "metrics" in BENCH_obs.json. *)
let measure_metrics = Webdep_obs.Registry.snapshot ()

(* Sequential-vs-parallel probe over a fixed country sample: wall-clock
   for both paths plus a structural-equality check of the datasets.  On
   a single-core host the speedup hovers around 1.0 — the probe is there
   so multi-core CI records honest numbers, and so determinism is
   checked on every bench run regardless. *)
type speedup_probe = {
  probe_countries : int;
  seq_s : float;
  par_s : float;
  speedup : float;
  identical : bool;
}

let speedup =
  if jobs <= 1 then None
  else begin
    let sample = [ "US"; "RU"; "BR"; "DE"; "JP"; "IN"; "FR"; "TH" ] in
    let seq_ds, seq_s =
      Span.timed ~name:"bench.speedup_probe.seq" (fun () ->
          Measure.measure_all ~countries:sample ~jobs:1 world)
    in
    let par_ds, par_s =
      Span.timed ~name:"bench.speedup_probe.par" (fun () ->
          Measure.measure_all ~countries:sample ~jobs world)
    in
    let identical =
      List.for_all (fun cc -> D.country_exn seq_ds cc = D.country_exn par_ds cc) sample
    in
    Printf.printf
      "speedup probe (%d countries): seq %.2fs, par %.2fs (x%.2f with %d domains), \
       datasets identical: %b\n%!"
      (List.length sample) seq_s par_s (seq_s /. par_s) jobs identical;
    if not identical then
      prerr_endline "webdep bench: WARNING: parallel dataset differs from sequential";
    Some
      { probe_countries = List.length sample; seq_s; par_s;
        speedup = seq_s /. par_s; identical }
  end

(* Zero the registry so the first phase's counters start from a clean
   slate (see the header comment on registry semantics). *)
let () = Webdep_obs.Registry.reset ()

let all_ccs = D.countries ds
let layers = Scores.all_layers

let score layer cc = Metrics.centralization ds layer cc
let scores_arr layer ccs = Array.of_list (List.map (score layer) ccs)

let hosting_classification = lazy (Classify.classify ds Hosting)
let dns_classification = lazy (Classify.classify ds Dns)
let ca_classification = lazy (Classify.classify ds Ca)

(* ========================================================================
   Section 3: metric definitions
   ======================================================================== *)

let fig1 () =
  section "Figure 1" "Top-N metric shortcoming (AZ, HK, TH, IR rank curves)";
  Printf.printf "cumulative %% of sites by provider rank (hosting):\n";
  Printf.printf "%-4s %6s %6s %6s %6s %6s %8s %8s\n" "cc" "r=1" "r=2" "r=5" "r=10" "r=100"
    "S" "paper S";
  List.iter
    (fun cc ->
      let cum = Metrics.cumulative_rank_curve ds Hosting cc in
      let at r = if r - 1 < Array.length cum then pct cum.(r - 1) else 100.0 in
      Printf.printf "%-4s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %8.4f %8.4f\n" cc (at 1)
        (at 2) (at 5) (at 10) (at 100) (score Hosting cc) (Scores.score_exn Hosting cc))
    [ "AZ"; "HK"; "TH"; "IR" ];
  Printf.printf
    "paper's point: AZ and HK share a ~59%% top-5 share but AZ's steeper head\n\
     yields a higher S; TH and IR are the extremes.\n";
  Printf.printf "top-5 share: AZ = %.1f%%  HK = %.1f%%\n"
    (pct (Metrics.top_n_share ds Hosting "AZ" 5))
    (pct (Metrics.top_n_share ds Hosting "HK" 5));
  Printf.printf "\ncumulative rank curve, TH (most centralized):\n%s"
    (Webdep.Render.rank_curve (Metrics.cumulative_rank_curve ds Hosting "TH"));
  Printf.printf "cumulative rank curve, IR (least centralized):\n%s"
    (Webdep.Render.rank_curve (Metrics.cumulative_rank_curve ds Hosting "IR"))

let fig2 () =
  section "Figure 2" "Worked EMD example (country A = 0.28, country B = 0.32)";
  let a = [| 5; 3; 2 |] and b = [| 6; 2; 1; 1 |] in
  let show name counts =
    let d = Webdep_emd.Dist.of_counts counts in
    Printf.printf
      "country %s: counts (%s) over C=10 sites -> S closed form = %.4f, via transportation \
       solver = %.4f\n"
      name
      (String.concat "," (List.map string_of_int (Array.to_list counts)))
      (Webdep_emd.Centralization.score d)
      (Webdep_emd.Centralization.via_transport ~fast:false d)
  in
  show "A" a;
  show "B" b;
  Printf.printf "paper: EMD(A) = 0.28 < EMD(B) = 0.32 — B is more centralized.\n"

let fig3 () =
  section "Figure 3" "Example S values for synthetic distributions";
  Printf.printf "%-8s %10s %14s %20s\n" "target" "achieved" "providers" "for 90% of sites";
  List.iter
    (fun target ->
      let n = if target > 0.4 then 50 else if target > 0.1 then 500 else 5000 in
      let n = min n (c / 2) in
      let floor = (1.0 /. float_of_int n) -. (1.0 /. float_of_int c) in
      if target <= floor then
        Printf.printf "%-8.3f (unattainable at c=%d: needs more providers than c/2)\n" target c
      else
      let r = Webdep_worldgen.Calibrate.counts ~c ~n_providers:n ~target () in
      let dist = Webdep_emd.Dist.of_counts r.Webdep_worldgen.Calibrate.counts in
      let cum = ref 0.0 and k = ref 0 and total = Webdep_emd.Dist.total dist in
      Array.iter
        (fun m ->
          if !cum < 0.9 *. total then begin
            cum := !cum +. m;
            incr k
          end)
        (Webdep_emd.Dist.sorted_desc dist);
      Printf.printf "%-8.3f %10.4f %14d %20d\n" target r.Webdep_worldgen.Calibrate.achieved
        (Array.length r.Webdep_worldgen.Calibrate.counts)
        !k)
    [ 0.818; 0.481; 0.25; 0.111; 0.026; 0.005; 0.001 ]

let fig4 () =
  section "Figure 4" "Usage and endemicity (global vs regional provider)";
  Printf.printf "%-18s %9s %10s %8s %8s   top of usage curve (%%)\n" "provider" "usage U"
    "endem. E" "E_R" "peak";
  List.iter
    (fun name ->
      match R.usage_curve ds Hosting ~name with
      | u ->
          Printf.printf "%-18s %9.1f %10.1f %8.3f %7.1f%%  " name u.R.usage u.R.endemicity
            u.R.endemicity_ratio u.R.curve.(0);
          Array.iteri (fun i v -> if i < 8 then Printf.printf "%5.1f" v) u.R.curve;
          print_newline ()
      | exception Not_found -> Printf.printf "%-18s (absent)\n" name)
    [ "Cloudflare"; "Amazon"; "OVH"; "Beget LLC"; "SuperHosting.BG" ];
  Printf.printf
    "paper: the global provider has larger usage; the regional provider a higher\n\
     endemicity ratio (Beget-style curve concentrated on CIS countries).\n"

(* ========================================================================
   Section 5: hosting
   ======================================================================== *)

let show_class_table title (cl : Classify.classification) paper =
  Printf.printf "%s (raw affinity-propagation clusters: %d; paper found %d on hosting)\n"
    title cl.Classify.raw_clusters Anecdotes.hosting_cluster_count;
  Printf.printf "%-10s %9s %10s   example\n" "class" "measured" "paper";
  List.iter
    (fun (k, n) ->
      let paper_n =
        Option.value ~default:0 (List.assoc_opt (Classify.klass_name k) paper)
      in
      let example =
        List.find_map
          (fun ((s : R.usage_stats), k') ->
            if k' = k then Some s.R.entity.D.name else None)
          cl.Classify.providers
      in
      Printf.printf "%-10s %9d %10d   %s\n" (Classify.klass_name k) n paper_n
        (Option.value ~default:"-" example))
    cl.Classify.table

let table1 () =
  section "Table 1" "Classes of hosting providers";
  show_class_table "hosting provider classes" (Lazy.force hosting_classification)
    Anecdotes.hosting_classes;
  Printf.printf
    "note: the global classes match the paper's counts; our synthetic tail mints\n\
     more XS-RP identities than the real world's 11,548 (see DESIGN.md).\n"

let fig5 () =
  section "Figure 5" "Hosting centralization by country";
  let ranked = Report.ranked_scores ds Hosting in
  Printf.printf "most centralized:\n";
  List.iteri
    (fun i r ->
      if i < 10 then
        Printf.printf "  #%-3d %-4s S = %.4f (paper %.4f)\n" r.Report.rank r.Report.country
          r.Report.value
          (Scores.score_exn Hosting r.Report.country))
    ranked;
  Printf.printf "least centralized:\n";
  let n = List.length ranked in
  List.iteri
    (fun i r ->
      if i >= n - 10 then
        Printf.printf "  #%-3d %-4s S = %.4f (paper %.4f)\n" r.Report.rank r.Report.country
          r.Report.value
          (Scores.score_exn Hosting r.Report.country))
    ranked;
  Printf.printf "\nsubregion means (paper: SE Asia most centralized 0.2403, Central Asia least 0.0788):\n";
  List.iter
    (fun (sr, m) -> Printf.printf "  %-22s %.4f\n" (Region.subregion_name sr) m)
    (Report.subregion_means ds Hosting (score Hosting));
  Printf.printf "\nglobal: mean S = %.4f (paper %.4f), var = %.4f (paper %.3f)\n"
    (Report.layer_mean ds Hosting) Anecdotes.hosting_mean_centralization
    (Report.layer_variance ds Hosting) Anecdotes.hosting_centralization_variance;
  Printf.printf "90%% of websites hosted by fewer than %d providers in every country (paper: %d)\n"
    (List.fold_left
       (fun acc cc -> max acc (Metrics.providers_for_share ds Hosting cc 0.9))
       0 all_ccs)
    Anecdotes.providers_for_90pct_max;
  Printf.printf "\nbootstrap 95%% confidence intervals (toplist sampling noise):\n";
  List.iter
    (fun cc ->
      let lo, hi = Metrics.centralization_interval ~iterations:200 ~seed ds Hosting cc in
      Printf.printf "  %-4s S = %.4f  [%.4f, %.4f]\n" cc (score Hosting cc) lo hi)
    [ "TH"; "US"; "IR" ]

let fig6 () =
  section "Figure 6" "Classification of providers (usage x endemicity plane)";
  let cl = Lazy.force hosting_classification in
  Printf.printf "%-10s %9s %12s %12s %10s\n" "class" "providers" "mean U/ctry" "mean peak" "mean E_R";
  List.iter
    (fun k ->
      let members = List.filter (fun (_, k') -> k' = k) cl.Classify.providers in
      if members <> [] then begin
        let n = float_of_int (List.length members) in
        let avg f = List.fold_left (fun acc (s, _) -> acc +. f s) 0.0 members /. n in
        Printf.printf "%-10s %9d %11.2f%% %11.2f%% %10.3f\n" (Classify.klass_name k)
          (List.length members)
          (avg (fun (s : R.usage_stats) -> s.R.usage /. 150.0))
          (avg (fun (s : R.usage_stats) ->
               if Array.length s.R.curve = 0 then 0.0 else s.R.curve.(0)))
          (avg (fun (s : R.usage_stats) -> s.R.endemicity_ratio))
      end)
    Classify.all_klasses

let class_breakdown layer (cl : Classify.classification) countries =
  Printf.printf "%-4s %8s" "cc" "S";
  List.iter (fun k -> Printf.printf " %8s" (Classify.klass_name k)) Classify.all_klasses;
  print_newline ();
  List.iter
    (fun cc ->
      Printf.printf "%-4s %8.4f" cc (score layer cc);
      List.iter
        (fun (_, share) -> Printf.printf " %7.1f%%" (pct share))
        (Classify.class_shares cl ds layer cc);
      print_newline ())
    countries

let spread_sample () =
  (* Every 10th country by hosting rank: a readable slice of the 150. *)
  let ranked = List.map (fun r -> r.Report.country) (Report.ranked_scores ds Hosting) in
  List.filteri (fun i _ -> i mod 10 = 0 || i = List.length ranked - 1) ranked

let fig7 () =
  section "Figure 7" "Breakdown of hosting provider types per country (sorted by S)";
  class_breakdown Hosting (Lazy.force hosting_classification) (spread_sample ());
  let cf_top =
    List.filter
      (fun cc ->
        match D.counts_by_entity ds Hosting cc with
        | (top, _) :: _ -> top.D.name = "Cloudflare"
        | [] -> false)
      all_ccs
  in
  Printf.printf "\nCloudflare is the top provider in %d/150 countries (paper: all but Japan)\n"
    (List.length cf_top)

let continent_matrix title rows =
  Printf.printf "%s\n%-14s" title "";
  List.iter (fun ct -> Printf.printf " %7s" (Region.continent_code ct)) Region.all_continents;
  Printf.printf " %7s\n" "anycast";
  List.iter
    (fun (ct, row, anycast) ->
      Printf.printf "%-14s" (Region.continent_name ct);
      List.iter (fun (_, v) -> Printf.printf " %6.1f%%" (pct v)) row;
      Printf.printf " %6.1f%%\n" (pct anycast))
    rows

(* Continent x continent matrix from a per-site field. *)
let geo_matrix field anycast_field =
  List.map
    (fun ct ->
      let members =
        List.filter
          (fun cc ->
            match Country.of_code cc with
            | Some country -> Country.continent country = ct
            | None -> false)
          all_ccs
      in
      let totals = Hashtbl.create 8 in
      let anycast_total = ref 0.0 in
      List.iter
        (fun cc ->
          let cd = D.country_exn ds cc in
          let n = float_of_int (List.length cd.D.sites) in
          List.iter
            (fun site ->
              if anycast_field site then anycast_total := !anycast_total +. (1.0 /. n)
              else
                match field site with
                | None -> ()
                | Some code -> (
                    match Country.of_code code with
                    | None -> ()
                    | Some country ->
                        let target = Country.continent country in
                        Hashtbl.replace totals target
                          ((1.0 /. n)
                          +. Option.value ~default:0.0 (Hashtbl.find_opt totals target))))
            cd.D.sites)
        members;
      let n = Float.max 1.0 (float_of_int (List.length members)) in
      ( ct,
        List.map
          (fun target ->
            (target, Option.value ~default:0.0 (Hashtbl.find_opt totals target) /. n))
          Region.all_continents,
        !anycast_total /. n ))
    Region.all_continents

let fig8 () =
  section "Figure 8" "Regional dependencies on other continents";
  let hq = List.map (fun (ct, row) -> (ct, row, 0.0)) (R.dependence_matrix ds Hosting) in
  continent_matrix "(a) hosting provider HQ continent:" hq;
  print_newline ();
  continent_matrix "(b) hosting IP geolocation continent (anycast separate):"
    (geo_matrix (fun s -> s.D.hosting_geo) (fun s -> s.D.hosting_anycast));
  print_newline ();
  continent_matrix "(c) DNS nameserver geolocation continent (anycast separate):"
    (geo_matrix (fun s -> s.D.ns_geo) (fun s -> s.D.ns_anycast));
  Printf.printf
    "\npaper: strong reliance on North America everywhere; Europe and Eastern Asia\n\
     mostly self-reliant; anycast far more common for nameservers than hosting.\n"

let fig9 () =
  section "Figure 9" "Centralization across layers and subregions";
  Printf.printf "%-22s" "subregion";
  List.iter (fun l -> Printf.printf " %9s" (Scores.layer_name l)) layers;
  print_newline ();
  List.iter
    (fun sr ->
      let members =
        List.filter (fun cc -> (Country.of_code_exn cc).Country.subregion = sr) all_ccs
      in
      if members <> [] then begin
        Printf.printf "%-22s" (Region.subregion_name sr);
        List.iter
          (fun layer ->
            let mean = Webdep_stats.Descriptive.mean (scores_arr layer members) in
            Printf.printf " %9.4f" mean)
          layers;
        print_newline ()
      end)
    Region.all_subregions;
  Printf.printf "\nhosting-layer spread per subregion (the figure's distributions):\n";
  Printf.printf "%-22s %7s %7s %7s %7s %7s\n" "" "min" "q1" "median" "q3" "max";
  List.iter
    (fun (sr, s) ->
      Printf.printf "%-22s %7.4f %7.4f %7.4f %7.4f %7.4f\n" (Region.subregion_name sr)
        s.Report.min s.Report.q1 s.Report.median s.Report.q3 s.Report.max)
    (Report.subregion_spread ds Hosting (score Hosting))

let fig10 () =
  section "Figure 10" "Insularity across layers and subregions";
  Printf.printf "%-22s" "subregion";
  List.iter (fun l -> Printf.printf " %9s" (Scores.layer_name l)) layers;
  print_newline ();
  List.iter
    (fun sr ->
      let members =
        List.filter (fun cc -> (Country.of_code_exn cc).Country.subregion = sr) all_ccs
      in
      if members <> [] then begin
        Printf.printf "%-22s" (Region.subregion_name sr);
        List.iter
          (fun layer ->
            let mean =
              Webdep_stats.Descriptive.mean
                (Array.of_list (List.map (R.insularity ds layer) members))
            in
            Printf.printf " %8.1f%%" (pct mean))
          layers;
        print_newline ()
      end)
    Region.all_subregions

let fig11 () =
  section "Figure 11" "CDF of insularity across layers";
  Printf.printf "%-8s" "percent";
  List.iter (fun l -> Printf.printf " %9s" (Scores.layer_name l)) layers;
  print_newline ();
  let cdfs = List.map (fun l -> Report.insularity_cdf ds l) layers in
  List.iter
    (fun q ->
      Printf.printf "p%-7d" q;
      List.iter
        (fun cdf ->
          let idx = min (Array.length cdf - 1) (q * Array.length cdf / 100) in
          Printf.printf " %8.1f%%" (pct (fst cdf.(idx))))
        cdfs;
      print_newline ())
    [ 10; 25; 50; 75; 90; 99 ];
  Printf.printf
    "paper: countries are most insular at the TLD layer; hosting and DNS track\n\
     each other; CA insularity is near zero almost everywhere.\n"

let fig12 () =
  section "Figure 12" "Centralization histograms by layer + Global Top marker";
  List.iter
    (fun layer ->
      let h = Report.score_histogram ds layer ~bins:12 () in
      Printf.printf "%-8s |" (Scores.layer_name layer);
      Array.iter (fun k -> Printf.printf " %3d" k) h.Webdep_stats.Histogram.counts;
      Printf.printf "|  global-top marker S = %.4f\n" (Metrics.global_score ds layer))
    layers;
  Printf.printf "(bins of width 0.05 over [0, 0.6])\n";
  Printf.printf "\nhosting layer histogram:\n%s"
    (Webdep.Render.histogram (Report.score_histogram ds Hosting ~bins:12 ()));
  Printf.printf "TLD layer histogram:\n%s"
    (Webdep.Render.histogram (Report.score_histogram ds Tld ~bins:12 ()));
  Printf.printf
    "paper: hosting/DNS similar; CA has tiny variance; TLD shifted right; the\n\
     pooled global-top S is representative for hosting/DNS/CA but not TLD.\n"

let fig13 () =
  section "Figure 13" "CA insularity by country";
  let ranked = Report.ranked_insularity ds Ca in
  List.iteri
    (fun i r ->
      if i < 10 then
        Printf.printf "  #%-3d %-4s %5.1f%%\n" r.Report.rank r.Report.country
          (pct r.Report.value))
    ranked;
  let with_local = List.length (List.filter (fun r -> r.Report.value > 0.0) ranked) in
  Printf.printf "countries using any CA based in their own country: %d (paper: %d)\n" with_local
    Anecdotes.ca_insular_countries

(* ========================================================================
   Section 6/7: DNS and CAs
   ======================================================================== *)

let table2 () =
  section "Table 2" "Classes of DNS infrastructure providers";
  show_class_table "dns provider classes" (Lazy.force dns_classification) Anecdotes.dns_classes

let table3 () =
  section "Table 3" "Classes of certificate authorities";
  let cl = Lazy.force ca_classification in
  show_class_table "certificate authority classes" cl Anecdotes.ca_classes;
  let distinct = List.length cl.Classify.providers in
  Printf.printf "distinct CAs observed: %d (paper: %d)\n" distinct Anecdotes.ca_total;
  let global7 =
    [ "Let's Encrypt"; "DigiCert"; "Sectigo"; "Google Trust Services";
      "Amazon Trust Services"; "GlobalSign"; "GoDaddy" ]
  in
  let shares =
    List.map
      (fun cc ->
        List.fold_left (fun acc n -> acc +. D.entity_share ds Ca cc ~name:n) 0.0 global7)
      all_ccs
  in
  Printf.printf
    "seven large global CAs cover %.1f%%-%.1f%% of websites per country (paper: 80-99.7%%)\n"
    (pct (List.fold_left Float.min 1.0 shares))
    (pct (List.fold_left Float.max 0.0 shares))

let fig14 () =
  section "Figure 14" "DNS provider-type breakdown per country";
  class_breakdown Dns (Lazy.force dns_classification) (spread_sample ())

let fig15 () =
  section "Figure 15" "CA breakdown per country (seven global CAs vs rest)";
  let global7 =
    [ "Let's Encrypt"; "DigiCert"; "Sectigo"; "Google Trust Services";
      "Amazon Trust Services"; "GlobalSign"; "GoDaddy" ]
  in
  Printf.printf "%-4s %8s %8s %9s %8s\n" "cc" "S" "LE" "DigiCert" "top7";
  List.iter
    (fun cc ->
      let share n = D.entity_share ds Ca cc ~name:n in
      let top7 = List.fold_left (fun acc n -> acc +. share n) 0.0 global7 in
      Printf.printf "%-4s %8.4f %7.1f%% %8.1f%% %7.1f%%\n" cc (score Ca cc)
        (pct (share "Let's Encrypt")) (pct (share "DigiCert")) (pct top7))
    [ "SK"; "CZ"; "EE"; "IR"; "RU"; "PL"; "US"; "DE"; "FR"; "IN"; "KR"; "VN"; "JP"; "TW" ]

let fig16 () =
  section "Figure 16" "TLD breakdown per country (.com / local ccTLD / external ccTLDs / global)";
  Printf.printf "%-4s %8s %8s %9s %8s %8s\n" "cc" "S" ".com" "local cc" "ext cc" "global";
  List.iter
    (fun cc ->
      let cd = D.country_exn ds cc in
      let n = float_of_int (List.length cd.D.sites) in
      let com = ref 0.0 and local = ref 0.0 and external_cc = ref 0.0 and global = ref 0.0 in
      let own = Country.ccTLD (Country.of_code_exn cc) in
      List.iter
        (fun s ->
          let tld = s.D.tld.D.name in
          if tld = ".com" then com := !com +. 1.0
          else if tld = own then local := !local +. 1.0
          else if Country.mem s.D.tld.D.country && s.D.tld.D.country <> "US" then
            external_cc := !external_cc +. 1.0
          else global := !global +. 1.0)
        cd.D.sites;
      Printf.printf "%-4s %8.4f %7.1f%% %8.1f%% %7.1f%% %7.1f%%\n" cc (score Tld cc)
        (pct (!com /. n)) (pct (!local /. n)) (pct (!external_cc /. n)) (pct (!global /. n)))
    [ "US"; "PR"; "CZ"; "HU"; "PL"; "TH"; "DE"; "AT"; "KG"; "TM"; "BY"; "RE"; "BF"; "JP" ]

let ranked_layer_figure id layer =
  section id (Printf.sprintf "%s centralization, sorted (named ranks)" (Scores.layer_name layer));
  let ranked = Report.ranked_scores ds layer in
  let n = List.length ranked in
  List.iteri
    (fun i r ->
      if i < 5 || i >= n - 5 then
        Printf.printf "  #%-3d %-4s S = %.4f (paper %.4f, paper rank %d)\n" r.Report.rank
          r.Report.country r.Report.value
          (Scores.score_exn layer r.Report.country)
          (Option.get (Scores.rank layer r.Report.country)))
    ranked;
  let measured = scores_arr layer all_ccs in
  let paper = Scores.scores_in_country_order layer all_ccs in
  let rho = (Correlation.pearson measured paper).Correlation.rho in
  Printf.printf "paper-vs-measured over all 150 countries: rho = %.4f\n" rho

let fig17 () = ranked_layer_figure "Figure 17" Dns
let fig18 () = ranked_layer_figure "Figure 18" Ca
let fig19 () = ranked_layer_figure "Figure 19" Tld

let insularity_figure id layer note =
  section id (Printf.sprintf "%s insularity, sorted" (Scores.layer_name layer));
  let ranked = Report.ranked_insularity ds layer in
  let n = List.length ranked in
  List.iteri
    (fun i r ->
      if i < 6 || i >= n - 3 then
        Printf.printf "  #%-3d %-4s %5.1f%%\n" r.Report.rank r.Report.country (pct r.Report.value))
    ranked;
  print_endline note

let fig20 () =
  insularity_figure "Figure 20" Hosting
    "paper: US most insular (92.1%), then IR (64.8%), CZ (54.5%), RU (51.1%)."

let fig21 () =
  insularity_figure "Figure 21" Dns "paper: DNS tracks hosting: US, CZ, IR, RU lead."

let fig22 () =
  insularity_figure "Figure 22" Tld
    "paper: US (via .com), CZ, HU, PL lead; French territories at the bottom."

let table_appendix id layer =
  section id
    (Printf.sprintf "Country x %s centralization scores (all 150 rows)"
       (String.uppercase_ascii (Scores.layer_name layer)));
  Printf.printf "%-5s %-4s %10s %10s %8s\n" "rank" "cc" "measured" "paper" "diff";
  let ranked = Report.ranked_scores ds layer in
  List.iter
    (fun r ->
      let paper = Scores.score_exn layer r.Report.country in
      Printf.printf "%-5d %-4s %10.4f %10.4f %+8.4f\n" r.Report.rank r.Report.country
        r.Report.value paper (r.Report.value -. paper))
    ranked;
  let measured = scores_arr layer all_ccs in
  let paper = Scores.scores_in_country_order layer all_ccs in
  let rho = (Correlation.pearson measured paper).Correlation.rho in
  let max_diff =
    List.fold_left
      (fun acc cc -> Float.max acc (Float.abs (score layer cc -. Scores.score_exn layer cc)))
      0.0 all_ccs
  in
  Printf.printf
    "summary: rho = %.4f, max |diff| = %.4f, mean measured = %.4f, mean paper = %.4f\n" rho
    max_diff (Report.layer_mean ds layer) (Scores.mean layer)

let table5 () = table_appendix "Table 5" Hosting
let table6 () = table_appendix "Table 6" Dns
let table7 () = table_appendix "Table 7" Ca
let table8 () = table_appendix "Table 8" Tld

(* ========================================================================
   Experiments from the text
   ======================================================================== *)

let vantage () =
  section "Sec 3.4" "Vantage-point validation (RIPE-style probes)";
  let home = List.map (fun cc -> (cc, score Hosting cc)) all_ccs in
  let probes = Measure.measure_with_probes ~per_country_probes:5 ~seed world all_ccs in
  let v = Webdep.Validate.correlate ~home ~probes in
  Printf.printf "rho(home vantage, in-country probes) = %.4f (paper: %.2f), p = %.2g\n"
    v.Webdep.Validate.rho.Correlation.rho Anecdotes.rho_vantage_points
    v.Webdep.Validate.rho.Correlation.p_value;
  Printf.printf "max per-country gap = %.4f over %d countries\n" v.Webdep.Validate.max_gap
    (List.length v.Webdep.Validate.pairs)

let longitudinal () =
  section "Sec 5.4" "Longitudinal change, May 2023 -> May 2025";
  let ds25, seconds =
    Span.timed ~name:"bench.measure_all_2025" (fun () ->
        Measure.measure_all ~epoch:World.May_2025 world)
  in
  Printf.printf "(2025 world measured in %.1fs)\n" seconds;
  (* The incremental path returns a comparison bit-identical to
     Longitudinal.compare (the store phase asserts it); the churn stats
     say how much of the delta work the toplist churn actually forced. *)
  let cmp, churn =
    Webdep.Longitudinal.compare_incremental ~focus:"Cloudflare" ~old_ds:ds ~new_ds:ds25
      Hosting
  in
  Printf.printf
    "churn: %d kept (%d relabelled), %d added, %d removed; provider support changed \
     in %d/%d countries\n"
    churn.Webdep.Longitudinal.kept churn.Webdep.Longitudinal.relabelled
    churn.Webdep.Longitudinal.added churn.Webdep.Longitudinal.removed
    churn.Webdep.Longitudinal.support_changed_countries churn.Webdep.Longitudinal.countries;
  Printf.printf "rho(S 2023, S 2025) = %.4f (paper: %.2f)\n"
    cmp.Webdep.Longitudinal.rho.Correlation.rho Anecdotes.rho_longitudinal;
  let ru = List.find (fun d -> d.Webdep.Longitudinal.country = "RU") cmp.Webdep.Longitudinal.deltas in
  Printf.printf "mean toplist Jaccard = %.3f (paper: ~%.2f); Russia = %.3f (paper: ~%.1f)\n"
    cmp.Webdep.Longitudinal.mean_jaccard Anecdotes.longitudinal_jaccard_mean
    ru.Webdep.Longitudinal.jaccard Anecdotes.longitudinal_jaccard_ru;
  (match cmp.Webdep.Longitudinal.focus_mean_delta with
  | Some d ->
      Printf.printf "mean Cloudflare change = %+.1f pts (paper: +%.1f)\n" (pct d)
        (pct Anecdotes.cloudflare_mean_increase)
  | None -> ());
  let br = List.find (fun d -> d.Webdep.Longitudinal.country = "BR") cmp.Webdep.Longitudinal.deltas in
  let paper_br = Anecdotes.brazil_old_new and paper_ru = Anecdotes.russia_old_new in
  Printf.printf "Brazil: %.4f -> %.4f (paper: %.4f -> %.4f) — largest increase\n"
    br.Webdep.Longitudinal.old_score br.Webdep.Longitudinal.new_score (fst paper_br)
    (snd paper_br);
  Printf.printf "Russia: %.4f -> %.4f (paper: %.4f -> %.4f) — largest decrease\n"
    ru.Webdep.Longitudinal.old_score ru.Webdep.Longitudinal.new_score (fst paper_ru)
    (snd paper_ru);
  let inc = Webdep.Longitudinal.largest_increase cmp in
  Printf.printf "largest measured increase: %s (%+.4f)\n" inc.Webdep.Longitudinal.country
    inc.Webdep.Longitudinal.delta

let correlations () =
  section "Sec 5.2/5.3" "Class-share and insularity correlations with S (hosting)";
  let cl = Lazy.force hosting_classification in
  let s = scores_arr Hosting all_ccs in
  let class_share k =
    Array.of_list (List.map (fun cc -> Classify.share_of_class cl ds Hosting cc k) all_ccs)
  in
  let perm_rng = Webdep_stats.Rng.create (seed + 7) in
  let report name arr paper =
    let r = Correlation.pearson arr s in
    let perm = Correlation.permutation_p ~iterations:500 perm_rng arr s in
    Printf.printf "%-38s rho = %+.3f (paper: %+.2f), p = %.2g (perm p = %.2g) [%s]\n" name
      r.Correlation.rho paper r.Correlation.p_value perm
      (Correlation.strength_to_string (Correlation.strength r.Correlation.rho))
  in
  report "XL-GP share vs centralization" (class_share Classify.XL_GP)
    Anecdotes.rho_xlgp_centralization;
  report "L-GP share vs centralization" (class_share Classify.L_GP)
    Anecdotes.rho_lgp_centralization;
  report "L-RP share vs centralization" (class_share Classify.L_RP)
    Anecdotes.rho_lrp_centralization;
  let ins = Array.of_list (List.map (R.insularity ds Hosting) all_ccs) in
  report "hosting insularity vs centralization" ins Anecdotes.rho_insularity_centralization;
  let tld_ins = Array.of_list (List.map (R.insularity ds Tld) all_ccs) in
  let r = Correlation.pearson ins tld_ins in
  Printf.printf "%-38s rho = %+.3f (paper: %+.2f), p = %.2g [%s]\n"
    "hosting vs TLD insularity" r.Correlation.rho Anecdotes.rho_hosting_tld_insularity
    r.Correlation.p_value
    (Correlation.strength_to_string (Correlation.strength r.Correlation.rho));
  (* Rank-based agreement: Spearman should tell the same story. *)
  let xl = class_share Classify.XL_GP in
  let rp = Correlation.pearson xl s and rs = Correlation.spearman xl s in
  let lo, hi = Correlation.fisher_interval rp in
  Printf.printf
    "\nXL-GP vs S — pearson %.3f (95%% CI [%.3f, %.3f]), spearman %.3f: rank-based\n\
     and linear agreement coincide.\n"
    rp.Correlation.rho lo hi rs.Correlation.rho;
  Printf.printf "\nregional case studies (share of hosting on partner-country providers):\n";
  List.iter
    (fun (cc, partner, paper_share) ->
      let dep =
        Option.value ~default:0.0
          (List.assoc_opt partner (R.foreign_dependence ds Hosting cc))
      in
      Printf.printf "  %s -> %s: %5.1f%% (paper: %5.1f%%)\n" cc partner (pct dep)
        (pct paper_share))
    Anecdotes.cross_country_hosting

let language_case_study () =
  section "Sec 5.3.3 (lang)" "Language and cross-border hosting: Afghanistan and Iran";
  let fa_share = Webdep.Language_analysis.share_of_language ds "AF" "fa" in
  let fa_in_ir = Webdep.Language_analysis.hosted_in ds "AF" ~language:"fa" ~home:"IR" in
  Printf.printf "Persian share of Afghan top sites: %.1f%% (paper: 31.4%%)\n" (pct fa_share);
  Printf.printf "of those, hosted in Iran:          %.1f%% (paper: 60.8%%)\n" (pct fa_in_ir);
  Printf.printf "Afghan language breakdown: %s\n"
    (String.concat ", "
       (List.filteri (fun i _ -> i < 4)
          (List.map
             (fun (lang, s) -> Printf.sprintf "%s %.1f%%" lang (pct s))
             (Webdep.Language_analysis.language_breakdown ds "AF"))));
  Printf.printf "Persian sites by provider home: %s\n"
    (String.concat ", "
       (List.filteri (fun i _ -> i < 4)
          (List.map
             (fun (home, s) -> Printf.sprintf "%s %.1f%%" home (pct s))
             (Webdep.Language_analysis.language_home_crosstab ds "AF" ~language:"fa"))))

let redundancy_study () =
  section "Sec 3.2 (ext)" "Provider redundancy: sites that require a single provider";
  Printf.printf "%-4s %14s %14s %12s\n" "cc" "single-homed" "top critical" "SPOF score";
  List.iter
    (fun cc ->
      let input =
        Measure.discover_redundancy ~vantages:[ "US"; cc; "DE"; "JP"; "BR" ] world cc
      in
      let r = Webdep.Redundancy.analyze input in
      let top =
        match r.Webdep.Redundancy.critical_counts with
        | (name, k) :: _ -> Printf.sprintf "%s (%d)" name k
        | [] -> "-"
      in
      Printf.printf "%-4s %13.1f%% %14s %12.4f\n" cc
        (pct (Webdep.Redundancy.single_homed_fraction r))
        top r.Webdep.Redundancy.spof_score)
    [ "TH"; "US"; "IR"; "DE" ];
  Printf.printf
    "multi-CDN sites (%.0f%% of the world) surface a secondary provider from some\n\
     vantages and stop counting as single points of failure.\n"
    (pct World.multi_cdn_fraction)

let external_tlds () =
  section "App. B (ext)" "External ccTLD dependence";
  Printf.printf "countries where an external ccTLD outranks the local one:\n";
  let over =
    List.filter_map
      (fun cc ->
        Option.map (fun tld -> (cc, tld)) (Webdep.Tld_analysis.uses_external_over_local ds cc))
      all_ccs
  in
  List.iter (fun (cc, tld) -> Printf.printf "  %-4s -> %s\n" cc tld) over;
  Printf.printf "(paper: .fr outranks the local ccTLD in 14 countries)\n\n";
  Printf.printf "%-4s  top external ccTLDs\n" "cc";
  List.iter
    (fun cc ->
      let ext = Webdep.Tld_analysis.external_cctlds ds cc in
      Printf.printf "%-4s  %s\n" cc
        (String.concat ", "
           (List.filteri (fun i _ -> i < 3)
              (List.map (fun (tld, s) -> Printf.sprintf "%s %.1f%%" tld (pct s)) ext))))
    [ "KG"; "TM"; "BY"; "AT"; "CH"; "BF"; "RE"; "SK" ]

let baselines () =
  section "Baselines" "S vs the measures prior work used (top-N, HHI, Gini)";
  let module B = Webdep_emd.Baselines in
  Printf.printf "%-4s %8s %8s %8s %8s %10s\n" "cc" "S" "top-5" "gini" "evenness" "eff. prov";
  List.iter
    (fun cc ->
      let d = D.distribution ds Hosting cc in
      Printf.printf "%-4s %8.4f %7.1f%% %8.3f %8.3f %10.1f\n" cc (score Hosting cc)
        (pct (B.top_n d 5)) (B.gini d) (B.shannon_evenness d) (B.effective_providers d))
    [ "TH"; "AZ"; "HK"; "US"; "CZ"; "IR" ];
  let labelled = List.map (fun cc -> (cc, D.distribution ds Hosting cc)) all_ccs in
  let dis = B.compare_with_top_n labelled in
  Printf.printf
    "\nover all %d country pairs: top-5 ties %d pairs that S separates, and\n\
     orders %d pairs opposite to S — the Figure 1 shortcoming at scale.\n"
    dis.B.pairs_compared dis.B.topn_ties_s_separates dis.B.rank_inversions

let weighted_and_pairwise () =
  section "Sec 3.2 (ext)" "Customizable EMD: traffic weighting and pairwise comparison";
  (* Traffic weighting: give sites Zipf traffic weights, heaviest traffic
     on the sites of the biggest providers (popular sites sit on the big
     CDNs), and compare against the unweighted score. *)
  let cc = "TH" in
  let groups = D.counts_by_entity ds Hosting cc in
  let total_sites = List.fold_left (fun acc (_, k) -> acc + k) 0 groups in
  let zipf = Webdep_stats.Sample.zipf_weights ~s:1.0 total_sites in
  let _, weighted_groups =
    List.fold_left
      (fun (offset, acc) (_, k) ->
        let k = min k (total_sites - offset) in
        (offset + k, Array.sub zipf offset k :: acc))
      (0, []) groups
  in
  let unweighted = score Hosting cc in
  let weighted = Webdep_emd.Extensions.weighted_score weighted_groups in
  Printf.printf "%s hosting: unweighted S = %.4f, traffic-weighted S_w = %.4f\n" cc unweighted
    weighted;
  Printf.printf
    "(weighting by Zipf traffic increases concentration: popular sites sit on the\n\
     biggest providers)\n\n";
  (* Pairwise: which countries have the most similar hosting shapes?
     Exact pairwise EMD runs on the top-40 buckets (the solver is
     polynomial); the closed-form L1 companion uses the full vectors. *)
  let truncate d =
    let top = Array.sub (Webdep_emd.Dist.sorted_desc d) 0 (min 40 (Webdep_emd.Dist.size d)) in
    Webdep_emd.Dist.of_masses top
  in
  let pairs = [ ("AZ", "HK"); ("TH", "ID"); ("TH", "IR"); ("CZ", "RU"); ("US", "GB") ] in
  Printf.printf "%-10s %16s %14s\n" "pair" "EMD(top-40)" "sorted-L1/2";
  List.iter
    (fun (a, b) ->
      let da = D.distribution ds Hosting a and db = D.distribution ds Hosting b in
      Printf.printf "%-4s/%-5s %16.4f %14.4f\n" a b
        (Webdep_emd.Extensions.pairwise (truncate da) (truncate db))
        (Webdep_emd.Extensions.sorted_share_l1 da db))
    pairs

(* ========================================================================
   Ablations (DESIGN.md)
   ======================================================================== *)

let shape_similarity () =
  section "Maps (ext)" "Distribution-shape similarity and subregional coherence";
  let coherence = Webdep.Similarity_analysis.subregional_coherence ds Hosting in
  Printf.printf
    "mean shape distance within subregions = %.4f, across = %.4f (ratio %.2f)\n\
     — countries resemble their subregion, the pattern behind the Figure 5 map.\n\n"
    coherence.Webdep.Similarity_analysis.within coherence.Webdep.Similarity_analysis.across
    coherence.Webdep.Similarity_analysis.ratio;
  List.iter
    (fun cc ->
      Printf.printf "%-4s nearest shapes: %s\n" cc
        (String.concat ", "
           (List.map
              (fun (other, d) -> Printf.sprintf "%s (%.3f)" other d)
              (Webdep.Similarity_analysis.nearest_neighbours ds Hosting ~k:4 cc))))
    [ "TH"; "IR"; "CZ"; "US" ]

let state_ca () =
  section "Sec 7.2 (ext)" "The browser-rejected state CA";
  let snap = World.snapshot world "RU" in
  let measured = Measure.measure_snapshot world snap in
  let assigned_state, labelled_state =
    List.fold_left
      (fun (a, l) s ->
        match Hashtbl.find_opt snap.Webdep_worldgen.World.assigned s.D.domain with
        | Some (_, _, ca)
          when ca.Webdep_worldgen.Provider.name = "Russian Trusted Root CA" ->
            ((a + 1), if s.D.ca <> None then l + 1 else l)
        | _ -> (a, l))
      (0, 0) measured.D.sites
  in
  Printf.printf
    "Russian sites serving certificates from the state root CA: %d (%.1f%%); the\n\
     pipeline labels %d of them — CCADB has no entry for a CA outside the browser\n\
     root programs, exactly the paper's account of the 2022 state CA.\n"
    assigned_state
    (pct (float_of_int assigned_state /. float_of_int (List.length measured.D.sites)))
    labelled_state

let crux_coverage () =
  section "Sec 3.4 (CrUX)" "Country coverage: the 10K-website eligibility cut";
  let rng = Webdep_stats.Rng.create seed in
  let es = Webdep_crux.Coverage.simulate rng () in
  Printf.printf
    "simulated CrUX country lists: %d of %d countries have >= %d websites (%.1f%%);\n\
     the paper keeps 150 of 237 (63.3%%).\n"
    (Webdep_crux.Coverage.eligible_count es)
    (List.length es) Webdep_crux.Coverage.threshold
    (pct (Webdep_crux.Coverage.eligible_fraction es));
  let lengths =
    Array.of_list (List.map (fun e -> float_of_int e.Webdep_crux.Coverage.list_length) es)
  in
  Printf.printf "list-length quartiles: p25 = %.0f, median = %.0f, p75 = %.0f\n"
    (Webdep_stats.Descriptive.percentile lengths 25.0)
    (Webdep_stats.Descriptive.median lengths)
    (Webdep_stats.Descriptive.percentile lengths 75.0)

let substrate_validation () =
  section "Substrates" "Pipeline substrate self-checks (ZDNS / RouteViews parity)";
  (* Iterative DNS over the delegation hierarchy vs the flat resolver. *)
  let stats = Measure.iterative_resolution_stats world "FR" in
  Printf.printf
    "iterative DNS (root -> TLD -> authoritative) over France's %d domains:\n\
    \  agreement with flat resolution = %.1f%%, %.2f queries/domain, %d failures\n"
    stats.Measure.domains (pct stats.Measure.agreement) stats.Measure.mean_queries
    stats.Measure.failures;
  (* RouteViews-style origin derivation vs the direct pfx2as table. *)
  let internet = World.internet world in
  let bgp = Webdep_netsim.Internet.bgp internet in
  let derived = Webdep_netsim.Bgp.derive_pfx2as bgp in
  let sampled = ref 0 and agree = ref 0 in
  Webdep_netsim.Prefix_table.fold
    (fun prefix _asn () ->
      if !sampled < 2000 then begin
        incr sampled;
        let a = Webdep_netsim.Ipv4.nth_addr prefix 1 in
        (* The derivation must agree with the Internet's own direct
           pfx2as table. *)
        if Webdep_netsim.Prefix_table.lookup derived a
           = Webdep_netsim.Internet.origin_as internet a
        then incr agree
      end)
    derived ();
  Printf.printf
    "BGP: %d announcements over %d prefixes; derived pfx2as self-consistent on %d/%d \
     samples; MOAS conflicts: %d\n"
    (Webdep_netsim.Bgp.announcement_count bgp)
    (Webdep_netsim.Bgp.prefix_count bgp)
    !agree !sampled
    (List.length (Webdep_netsim.Bgp.moas bgp))

let ablation_fdiv () =
  section "Ablation A" "f-divergences vs EMD on disjoint supports (Sec 3.1)";
  let module Div = Webdep_emd.Divergence in
  let obs1 = [| 0.9; 0.1 |] and obs2 = [| 0.6; 0.4 |] in
  let reference = Array.append [| 0.0; 0.0 |] (Array.make 8 0.125) in
  let pad v = fst (Div.align v reference) in
  Printf.printf "%-22s %12s %12s\n" "metric" "skewed(9:1)" "flat(6:4)";
  Printf.printf "%-22s %12.4f %12.4f   <- saturated, cannot rank\n" "Hellinger"
    (Div.hellinger (pad obs1) reference)
    (Div.hellinger (pad obs2) reference);
  Printf.printf "%-22s %12.4f %12.4f   <- saturated\n" "total variation"
    (Div.total_variation (pad obs1) reference)
    (Div.total_variation (pad obs2) reference);
  Printf.printf "%-22s %12.4f %12.4f   <- saturated at ln 2\n" "Jensen-Shannon"
    (Div.jensen_shannon (pad obs1) reference)
    (Div.jensen_shannon (pad obs2) reference);
  Printf.printf "%-22s %12s %12s   <- infinite on disjoint support\n" "KL" "inf" "inf";
  Printf.printf "%-22s %12.4f %12.4f   <- EMD-based S ranks them\n" "centralization S"
    (Webdep_emd.Centralization.score_of_counts [| 9; 1 |])
    (Webdep_emd.Centralization.score_of_counts [| 6; 4 |])

let ablation_c_sensitivity () =
  section "Ablation E" "Toplist-size sensitivity: S under different C (req. 3, Sec 3.2)";
  Printf.printf "%-4s" "cc";
  List.iter (fun c' -> Printf.printf " %10s" (Printf.sprintf "C=%d" c')) [ 1000; 2500; 5000; 10000 ];
  Printf.printf " %10s\n" "paper";
  List.iter
    (fun cc ->
      Printf.printf "%-4s" cc;
      List.iter
        (fun c' ->
          let m = Webdep_worldgen.Mix.build ~c:c' Hosting cc in
          Printf.printf " %10.4f" m.Webdep_worldgen.Mix.achieved_score)
        [ 1000; 2500; 5000; 10000 ];
      Printf.printf " %10.4f\n" (Scores.score_exn Hosting cc))
    [ "TH"; "US"; "CZ"; "IR" ];
  Printf.printf
    "the score is stable in C once C dominates the provider count — the paper's\n\
     requirement that comparisons hold C constant is conservative but cheap.\n"

let ablation_emd () =
  section "Ablation B" "Closed-form S vs general transportation solver (App. A)";
  let rng = Webdep_stats.Rng.create 99 in
  let max_gap = ref 0.0 in
  let trials = 50 in
  for _ = 1 to trials do
    let n = 2 + Webdep_stats.Rng.int rng 6 in
    let counts = Array.init n (fun _ -> 1 + Webdep_stats.Rng.int rng 8) in
    let d = Webdep_emd.Dist.of_counts counts in
    let gap =
      Float.abs
        (Webdep_emd.Centralization.score d
        -. Webdep_emd.Centralization.via_transport ~fast:false d)
    in
    max_gap := Float.max !max_gap gap
  done;
  Printf.printf "%d random instances: max |closed form - solver| = %.2e\n" trials !max_gap;
  let counts = [| 20; 10; 5; 3; 2 |] in
  let d = Webdep_emd.Dist.of_counts counts in
  let time f =
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.2 do
      ignore (f ());
      incr iters
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int !iters
  in
  let closed = time (fun () -> Webdep_emd.Centralization.score d) in
  let solver = time (fun () -> Webdep_emd.Centralization.via_transport ~fast:false d) in
  Printf.printf "closed form: %.2e s/call, solver (C=40): %.2e s/call (x%.0f slower)\n" closed
    solver (solver /. closed)

let ablation_endemicity () =
  section "Ablation C" "Endemicity ratio vs raw endemicity (size confound, Sec 3.3)";
  let usage = R.all_usage ds Hosting in
  let big = List.filteri (fun i _ -> i < 200) usage in
  let arr f = Array.of_list (List.map f big) in
  let u = arr (fun (s : R.usage_stats) -> s.R.usage) in
  let e_raw = arr (fun (s : R.usage_stats) -> s.R.endemicity) in
  let e_ratio = arr (fun (s : R.usage_stats) -> s.R.endemicity_ratio) in
  let r_raw = (Correlation.pearson u e_raw).Correlation.rho in
  let r_ratio = (Correlation.pearson u e_ratio).Correlation.rho in
  Printf.printf "corr(usage, raw endemicity)   = %+.3f   <- raw E confounded with size\n" r_raw;
  Printf.printf "corr(usage, endemicity ratio) = %+.3f   <- E_R removes the size effect\n"
    r_ratio

let ablation_clustering () =
  section "Ablation D" "Affinity propagation vs k-means for provider classes";
  let usage = R.all_usage ds Hosting in
  let head = Array.of_list (List.filteri (fun i _ -> i < 300) usage) in
  let points =
    Webdep_stats.Scaling.min_max_columns
      (Array.map (fun (s : R.usage_stats) -> [| log1p s.R.usage; s.R.endemicity_ratio |]) head)
  in
  let ap = Webdep_cluster.Affinity.cluster_points points in
  let ap_sil = Webdep_cluster.Silhouette.score points ap.Webdep_cluster.Affinity.assignment in
  let k = List.length ap.Webdep_cluster.Affinity.exemplars in
  let km = Webdep_cluster.Kmeans.run (Webdep_stats.Rng.create 42) ~k points in
  let km_sil = Webdep_cluster.Silhouette.score points km.Webdep_cluster.Kmeans.assignment in
  Printf.printf "affinity propagation: %d clusters, silhouette = %.3f (converged: %b)\n" k ap_sil
    ap.Webdep_cluster.Affinity.converged;
  Printf.printf "k-means (same k):     %d clusters, silhouette = %.3f\n" k km_sil

(* ========================================================================
   Bechamel timings: one Test.make per table/figure
   ======================================================================== *)

(* Run each Bechamel test as its own Benchmark.all on a pool lane and
   OLS-fit ns/run; the per-test raw tables merge into one (their keys
   are disjoint: "webdep/<test name>").  At --jobs 1 this is the exact
   sequential run; prefer that for clean absolute numbers, since
   concurrent lanes share cores and inflate per-run times.  Shared by
   the per-figure timings section and the always-on kernels phase. *)
let bechamel_rows ?jobs tests =
  let open Bechamel in
  let open Toolkit in
  let cfg = Benchmark.cfg ~limit:60 ~quota:(Time.second 0.15) ~kde:None () in
  let raws =
    Webdep_par.map ?jobs
      (fun test ->
        Benchmark.all cfg Instance.[ monotonic_clock ]
          (Test.make_grouped ~name:"webdep" [ test ]))
      tests
  in
  let raw = Hashtbl.create 64 in
  List.iter (fun tbl -> Hashtbl.iter (Hashtbl.add raw) tbl) raws;
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun name est acc ->
      match Analyze.OLS.estimates est with
      | Some [ ns ] -> (name, ns) :: acc
      | _ -> (name, nan) :: acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pretty_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns > 1e9 then Printf.sprintf "%8.2f s" (ns /. 1e9)
  else if ns > 1e6 then Printf.sprintf "%8.2f ms" (ns /. 1e6)
  else if ns > 1e3 then Printf.sprintf "%8.2f us" (ns /. 1e3)
  else Printf.sprintf "%8.0f ns" ns

let timings () =
  let open Bechamel in
  section "Timings" "Bechamel (one Test.make per table/figure)";
  let cl = Lazy.force hosting_classification in
  let small_counts = [| 20; 10; 5; 3; 2 |] in
  let small_dist = Webdep_emd.Dist.of_counts small_counts in
  let hosting_dist = D.distribution ds Hosting "TH" in
  let usage_head =
    Array.of_list (List.filteri (fun i _ -> i < 120) (R.all_usage ds Hosting))
  in
  let cluster_points =
    Webdep_stats.Scaling.min_max_columns
      (Array.map
         (fun (s : R.usage_stats) -> [| log1p s.R.usage; s.R.endemicity_ratio |])
         usage_head)
  in
  let home_scores = List.map (fun cc -> (cc, score Hosting cc)) all_ccs in
  let domains_a = List.init 2000 (fun i -> Printf.sprintf "a%05d.example" i) in
  let domains_b =
    List.init 2000 (fun i ->
        Printf.sprintf "%s%05d.example" (if i mod 2 = 0 then "a" else "b") i)
  in
  let stage = Staged.stage in
  let tests =
    [
      Test.make ~name:"fig1_rank_curves" (stage (fun () -> Metrics.rank_curve ds Hosting "AZ"));
      Test.make ~name:"fig2_emd_transport"
        (stage (fun () -> Webdep_emd.Centralization.via_transport ~fast:false small_dist));
      Test.make ~name:"fig3_calibration"
        (stage (fun () ->
             Webdep_worldgen.Calibrate.counts ~c:2000 ~n_providers:200 ~target:0.111 ()));
      Test.make ~name:"fig4_usage_curve"
        (stage (fun () -> R.usage_curve ds Hosting ~name:"Cloudflare"));
      Test.make ~name:"table1_classify"
        (stage (fun () -> Classify.classify ~cluster_cap:60 ds Hosting));
      Test.make ~name:"fig5_all_scores" (stage (fun () -> Metrics.all_scores ds Hosting));
      Test.make ~name:"fig6_affinity_propagation"
        (stage (fun () -> Webdep_cluster.Affinity.cluster_points ~max_iter:60 cluster_points));
      Test.make ~name:"fig7_class_shares"
        (stage (fun () -> Classify.class_shares cl ds Hosting "TH"));
      Test.make ~name:"fig8_dependence_matrix" (stage (fun () -> R.dependence_matrix ds Hosting));
      Test.make ~name:"fig9_subregion_means"
        (stage (fun () -> Report.subregion_means ds Hosting (score Hosting)));
      Test.make ~name:"fig10_insularity_means"
        (stage (fun () -> Report.subregion_means ds Hosting (R.insularity ds Hosting)));
      Test.make ~name:"fig11_insularity_cdf" (stage (fun () -> Report.insularity_cdf ds Hosting));
      Test.make ~name:"fig12_histogram" (stage (fun () -> Report.score_histogram ds Hosting ()));
      Test.make ~name:"fig13_ca_insularity" (stage (fun () -> R.all_insularity ds Ca));
      Test.make ~name:"table2_dns_usage_stats" (stage (fun () -> R.all_usage ds Dns));
      Test.make ~name:"table3_ca_usage_stats" (stage (fun () -> R.all_usage ds Ca));
      Test.make ~name:"fig14_dns_scores" (stage (fun () -> Metrics.all_scores ds Dns));
      Test.make ~name:"fig15_ca_scores" (stage (fun () -> Metrics.all_scores ds Ca));
      Test.make ~name:"fig16_tld_scores" (stage (fun () -> Metrics.all_scores ds Tld));
      Test.make ~name:"fig17_dns_ranked" (stage (fun () -> Report.ranked_scores ds Dns));
      Test.make ~name:"fig18_ca_ranked" (stage (fun () -> Report.ranked_scores ds Ca));
      Test.make ~name:"fig19_tld_ranked" (stage (fun () -> Report.ranked_scores ds Tld));
      Test.make ~name:"fig20_hosting_insularity"
        (stage (fun () -> R.all_insularity ds Hosting));
      Test.make ~name:"fig21_dns_insularity" (stage (fun () -> R.all_insularity ds Dns));
      Test.make ~name:"fig22_tld_insularity" (stage (fun () -> R.all_insularity ds Tld));
      Test.make ~name:"table5_hosting_score"
        (stage (fun () -> Webdep_emd.Centralization.score hosting_dist));
      Test.make ~name:"table6_dns_distribution" (stage (fun () -> D.distribution ds Dns "TH"));
      Test.make ~name:"table7_ca_distribution" (stage (fun () -> D.distribution ds Ca "TH"));
      Test.make ~name:"table8_tld_distribution" (stage (fun () -> D.distribution ds Tld "TH"));
      Test.make ~name:"vantage_correlate"
        (stage (fun () -> Webdep.Validate.correlate ~home:home_scores ~probes:home_scores));
      Test.make ~name:"longitudinal_jaccard"
        (stage (fun () -> Webdep_stats.Similarity.jaccard_strings domains_a domains_b));
      Test.make ~name:"ablation_closed_form"
        (stage (fun () -> Webdep_emd.Centralization.score small_dist));
      Test.make ~name:"ablation_transport"
        (stage (fun () -> Webdep_emd.Centralization.via_transport ~fast:false small_dist));
      Test.make ~name:"ext_language_crosstab"
        (stage (fun () -> Webdep.Language_analysis.language_breakdown ds "AF"));
      Test.make ~name:"ext_baselines_gini"
        (stage (fun () -> Webdep_emd.Baselines.gini hosting_dist));
      Test.make ~name:"ext_weighted_score"
        (stage (fun () ->
             Webdep_emd.Extensions.weighted_score [ [| 3.0; 2.0 |]; [| 1.0 |] ]));
      Test.make ~name:"ext_export_scores_csv"
        (stage (fun () -> Webdep.Export.scores_csv ds Hosting));
      Test.make ~name:"ext_tld_breakdown"
        (stage (fun () -> Webdep.Tld_analysis.breakdown ds "AT"));
    ]
  in
  let rows = bechamel_rows tests in
  Printf.printf "%-48s %16s\n" "benchmark" "time per run";
  List.iter (fun (name, ns) -> Printf.printf "%-48s %16s\n" name (pretty_ns ns)) rows

(* ========================================================================
   Hot-path kernels (always run): old-vs-new transport solver and
   cached-vs-uncached measurement.  WEBDEP_BENCH_SKIP_TIMINGS only skips
   the per-figure Bechamel section above — these numbers back the perf
   claims, so CI asserts on the "kernels" object in BENCH_obs.json.
   ======================================================================== *)

let kernel_json : (string * Json.t) list ref = ref []

(* A deterministic balanced instance: integer supplies/demands and dyadic
   eighth costs, so both solvers see bit-identical arithmetic.  Supplies
   start at [m] so every demand bucket stays positive even at n = 1. *)
let transport_instance ~n ~m =
  let supply = Array.init n (fun i -> float_of_int (m + ((i * 5 + 3) mod 9))) in
  let total = int_of_float (Array.fold_left ( +. ) 0.0 supply) in
  let q = total / m and r = total mod m in
  let demand = Array.init m (fun j -> float_of_int (q + if j < r then 1 else 0)) in
  let cost i j = float_of_int (((i * 7) + (j * 13)) mod 8) /. 8.0 in
  (supply, demand, cost)

let kernel_sizes = [ (8, 8); (16, 16); (32, 32); (64, 64); (1, 64); (64, 1) ]

let kernels () =
  section "Kernels" "Dijkstra-potential transport vs reference; resolver cache";
  let stage = Bechamel.Staged.stage in
  let tests =
    List.concat_map
      (fun (n, m) ->
        let supply, demand, cost = transport_instance ~n ~m in
        [
          Bechamel.Test.make
            ~name:(Printf.sprintf "transport_ref_%dx%d" n m)
            (stage (fun () -> Webdep_emd.Transport.solve_reference ~supply ~demand ~cost));
          Bechamel.Test.make
            ~name:(Printf.sprintf "transport_new_%dx%d" n m)
            (stage (fun () -> Webdep_emd.Transport.solve ~supply ~demand ~cost));
        ])
      kernel_sizes
  in
  (* Sequential lanes: the old-vs-new ratios are the point here, and
     concurrent lanes sharing cores skew them unpredictably. *)
  let rows = bechamel_rows ~jobs:1 tests in
  let ns_of name =
    match List.assoc_opt ("webdep/" ^ name) rows with Some ns -> ns | None -> nan
  in
  Printf.printf "%-12s %16s %16s %10s\n" "n x m" "reference" "dijkstra" "speedup";
  let transport_json =
    List.map
      (fun (n, m) ->
        let ref_ns = ns_of (Printf.sprintf "transport_ref_%dx%d" n m) in
        let new_ns = ns_of (Printf.sprintf "transport_new_%dx%d" n m) in
        let speedup = ref_ns /. new_ns in
        Printf.printf "%-12s %16s %16s %9.2fx\n"
          (Printf.sprintf "%dx%d" n m)
          (pretty_ns ref_ns) (pretty_ns new_ns) speedup;
        ( Printf.sprintf "%dx%d" n m,
          Json.Obj
            [
              ("ref_ns", Json.Float ref_ns);
              ("new_ns", Json.Float new_ns);
              ("speedup", Json.Float speedup);
            ] ))
      kernel_sizes
  in
  (* Cached-vs-uncached measurement over a fixed sample, sequential so
     the wall clocks compare the resolver work alone.  The datasets must
     be identical — caching may only change the work, never the data. *)
  let sample = [ "US"; "RU"; "BR"; "DE"; "JP"; "IN"; "FR"; "TH" ] in
  let uncached_ds, uncached_s =
    Span.timed ~name:"bench.kernels.measure_uncached" (fun () ->
        Measure.measure_all ~cache:false ~countries:sample ~jobs:1 world)
  in
  let cached_ds, cached_s =
    Span.timed ~name:"bench.kernels.measure_cached" (fun () ->
        Measure.measure_all ~countries:sample ~jobs:1 world)
  in
  let identical =
    List.for_all (fun cc -> D.country_exn uncached_ds cc = D.country_exn cached_ds cc) sample
  in
  (* The registry was reset at the previous phase boundary and the
     uncached run creates no caches, so these totals belong to the
     cached run alone. *)
  let counter name = Obs_metrics.value (Obs_metrics.counter name) in
  let response_hits = counter "dns.cache.response.hits" in
  let response_misses = counter "dns.cache.response.misses" in
  let glue_hits = counter "dns.cache.glue.hits" in
  let glue_misses = counter "dns.cache.glue.misses" in
  Printf.printf
    "measure_all (%d countries, --jobs 1): uncached %.2fs, cached %.2fs (x%.2f), datasets \
     identical: %b\n"
    (List.length sample) uncached_s cached_s (uncached_s /. cached_s) identical;
  Printf.printf
    "dns.cache.response: %d hits / %d misses; dns.cache.glue: %d hits / %d misses\n"
    response_hits response_misses glue_hits glue_misses;
  if not identical then
    prerr_endline "webdep bench: WARNING: cached dataset differs from uncached";
  (* Tracing-disabled span overhead: [Span.with_] against the default
     null sink vs the bare closure, amortized over many calls.  Bench
     phases open a handful of spans each, so per-call cost in the tens
     of microseconds would still be invisible — this records the actual
     figure so the "always-on instrumentation is free" claim is checked,
     not assumed. *)
  let span_reps = 50_000 in
  let work = Sys.opaque_identity (fun () -> ignore (Sys.opaque_identity 42)) in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to span_reps do
      f ()
    done;
    Unix.gettimeofday () -. t0
  in
  let bare_s = time work in
  let spanned_s =
    Webdep_obs.Sink.with_sink Webdep_obs.Sink.null (fun () ->
        time (fun () -> Span.with_ ~name:"bench.kernels.span_probe" work))
  in
  let span_ns_per_call = (spanned_s -. bare_s) /. float_of_int span_reps *. 1e9 in
  Printf.printf
    "span overhead (null sink, %d calls): %.0f ns/span — a phase opening 100 spans \
     pays %.2f ms\n"
    span_reps span_ns_per_call
    (float_of_int 100 *. span_ns_per_call /. 1e6);
  kernel_json :=
    [
      ("transport", Json.Obj transport_json);
      ( "measure_cached",
        Json.Obj
          [
            ("countries", Json.Int (List.length sample));
            ("uncached_s", Json.Float uncached_s);
            ("cached_s", Json.Float cached_s);
            ("speedup", Json.Float (uncached_s /. cached_s));
            ("identical", Json.Bool identical);
            ("response_hits", Json.Int response_hits);
            ("response_misses", Json.Int response_misses);
            ("glue_hits", Json.Int glue_hits);
            ("glue_misses", Json.Int glue_misses);
          ] );
      ( "span_probe",
        Json.Obj
          [
            ("reps", Json.Int span_reps);
            ("ns_per_call", Json.Float span_ns_per_call);
          ] );
    ]

(* ========================================================================
   Store (always run): the measurement store's warm-vs-cold cost and the
   incremental longitudinal path.  Self-contained — a fresh store is
   filled by a cold 2023+2025 measurement of the fixed sample, then the
   same measurements run again warm, so the other phases' timings stay
   comparable with earlier baselines.  CI asserts on the "store" object:
   warm must be at least 2x faster than cold, datasets (and the exported
   scores CSV) byte-identical, results invariant under --jobs, and the
   incremental comparison equal to the full one.
   ======================================================================== *)

module Store = Webdep_store.Store

let store_json : (string * Json.t) list ref = ref []

let store_phase () =
  section "Store" "measurement store: warm-vs-cold sweeps, incremental longitudinal";
  let sample = [ "US"; "RU"; "BR"; "DE"; "JP"; "IN"; "FR"; "TH" ] in
  let counter name = Obs_metrics.value (Obs_metrics.counter name) in
  let st = Store.create ~fingerprint:(Measure.store_fingerprint world) () in
  let cold23, cold23_s =
    Span.timed ~name:"bench.store.measure_cold" (fun () ->
        Measure.measure_all ~countries:sample ~jobs:1 ~store:st world)
  in
  let cold25, cold25_s =
    Span.timed ~name:"bench.store.measure_cold_2025" (fun () ->
        Measure.measure_all ~epoch:World.May_2025 ~countries:sample ~jobs:1 ~store:st
          world)
  in
  let cold_misses = counter "store.misses" in
  let warm23, warm23_s =
    Span.timed ~name:"bench.store.measure_warm" (fun () ->
        Measure.measure_all ~countries:sample ~jobs:1 ~store:st world)
  in
  let warm25, warm25_s =
    Span.timed ~name:"bench.store.measure_warm_2025" (fun () ->
        Measure.measure_all ~epoch:World.May_2025 ~countries:sample ~jobs:1 ~store:st
          world)
  in
  let warm_hits = counter "store.hits" in
  let cold_s = cold23_s +. cold25_s and warm_s = warm23_s +. warm25_s in
  let speedup = cold_s /. warm_s in
  let identical =
    List.for_all
      (fun cc ->
        D.country_exn cold23 cc = D.country_exn warm23 cc
        && D.country_exn cold25 cc = D.country_exn warm25 cc)
      sample
  in
  let csv_identical =
    Webdep.Export.scores_csv cold23 Hosting = Webdep.Export.scores_csv warm23 Hosting
  in
  let jobs_invariant =
    jobs <= 1
    ||
    let par23 = Measure.measure_all ~countries:sample ~jobs ~store:st world in
    List.for_all (fun cc -> D.country_exn par23 cc = D.country_exn warm23 cc) sample
  in
  Printf.printf
    "measure 2023+2025 (%d countries, --jobs 1): cold %.2fs, warm %.2fs (x%.2f), \
     datasets identical: %b, scores CSV identical: %b, jobs-invariant: %b\n"
    (List.length sample) cold_s warm_s speedup identical csv_identical jobs_invariant;
  Printf.printf "store.misses (cold fill) = %d, store.hits (warm re-measure) = %d\n"
    cold_misses warm_hits;
  if not (identical && csv_identical && jobs_invariant) then
    prerr_endline "webdep bench: WARNING: store-backed measurement differs from cold";
  let cmp_full, full_s =
    Span.timed ~name:"bench.store.compare_full" (fun () ->
        Webdep.Longitudinal.compare ~focus:"Cloudflare" ~old_ds:cold23 ~new_ds:cold25
          Hosting)
  in
  let (cmp_incr, churn), incr_s =
    Span.timed ~name:"bench.store.compare_incremental" (fun () ->
        Webdep.Longitudinal.compare_incremental ~focus:"Cloudflare" ~old_ds:cold23
          ~new_ds:cold25 Hosting)
  in
  let compare_identical = cmp_full = cmp_incr in
  Printf.printf
    "longitudinal: full compare %.4fs, incremental %.4fs (x%.2f), identical: %b \
     (%d kept / %d relabelled / %d added / %d removed)\n"
    full_s incr_s (full_s /. incr_s) compare_identical
    churn.Webdep.Longitudinal.kept churn.Webdep.Longitudinal.relabelled
    churn.Webdep.Longitudinal.added churn.Webdep.Longitudinal.removed;
  if not compare_identical then
    prerr_endline "webdep bench: WARNING: incremental comparison differs from full";
  (* Small-churn recomputation: the epoch comparison above relabels most
     kept domains, so the delta path does nearly full work there.  Churn
     2% of each country's sites instead and recompute every country's
     score — maintained-tally delta vs full re-tally from the edited
     site lists, values asserted equal. *)
  let inc = Webdep_store.Incremental.create cold23 Hosting in
  List.iter (fun cc -> ignore (Webdep_store.Incremental.score inc cc)) sample;
  let deltas =
    List.map
      (fun cc ->
        let old_sites = (D.country_exn cold23 cc).D.sites in
        let new_sites = (D.country_exn cold25 cc).D.sites in
        let removed = List.filteri (fun i _ -> i mod 50 = 0) old_sites in
        let added = List.filteri (fun i _ -> i mod 50 = 0) new_sites in
        (cc, added, removed))
      sample
  in
  let edited =
    List.map
      (fun (cc, added, removed) ->
        let keep =
          List.filter
            (fun s -> not (List.memq s removed))
            (D.country_exn cold23 cc).D.sites
        in
        { D.country = cc; D.sites = keep @ added })
      deltas
  in
  let incr_scores, churn_incr_s =
    Span.timed ~name:"bench.store.churn_incremental" (fun () ->
        List.iter
          (fun (cc, added, removed) ->
            Webdep_store.Incremental.apply inc ~country:cc ~added ~removed)
          deltas;
        List.map (fun cc -> Webdep_store.Incremental.score inc cc) sample)
  in
  let full_scores, churn_full_s =
    Span.timed ~name:"bench.store.churn_full" (fun () ->
        let edited_ds = D.of_country_data edited in
        List.map (fun cc -> Metrics.centralization edited_ds Hosting cc) sample)
  in
  let churn_identical = incr_scores = full_scores in
  Printf.printf
    "2%%-churn rescore (%d countries): full re-tally %.2fms, incremental %.2fms \
     (x%.1f), identical: %b\n"
    (List.length sample) (1e3 *. churn_full_s) (1e3 *. churn_incr_s)
    (churn_full_s /. churn_incr_s) churn_identical;
  if not churn_identical then
    prerr_endline "webdep bench: WARNING: incremental rescore differs from full";
  store_json :=
    [
      ("countries", Json.Int (List.length sample));
      ("cold_s", Json.Float cold_s);
      ("warm_s", Json.Float warm_s);
      ("speedup", Json.Float speedup);
      ("identical", Json.Bool identical);
      ("csv_identical", Json.Bool csv_identical);
      ("jobs_invariant", Json.Bool jobs_invariant);
      ("cold_misses", Json.Int cold_misses);
      ("warm_hits", Json.Int warm_hits);
      ("compare_full_s", Json.Float full_s);
      ("compare_incremental_s", Json.Float incr_s);
      ("compare_identical", Json.Bool compare_identical);
      ("churn_kept", Json.Int churn.Webdep.Longitudinal.kept);
      ("churn_relabelled", Json.Int churn.Webdep.Longitudinal.relabelled);
      ("churn_added", Json.Int churn.Webdep.Longitudinal.added);
      ("churn_removed", Json.Int churn.Webdep.Longitudinal.removed);
      ( "support_changed_countries",
        Json.Int churn.Webdep.Longitudinal.support_changed_countries );
      ("churn_full_s", Json.Float churn_full_s);
      ("churn_incremental_s", Json.Float churn_incr_s);
      ("churn_rescore_identical", Json.Bool churn_identical);
    ]

(* ========================================================================
   Faults (always run): the robustness plane's cost and behaviour.
   Three sequential sweeps over the same fixed sample:
     clean      measure_all, no fault plumbing at all
     zero_rate  measure_sweep with an enabled rate-0 plan + retries —
                every query consults the plan but nothing ever fires;
                its wall clock against "clean" is the overhead claim,
                and the datasets must be identical
     faulted    rate 0.05 with 3 retries — how much slower, how many
                faults fired, how many queries recovered, and whether
                every country still clears the coverage threshold
   ======================================================================== *)

module Faults = Webdep_faults.Fault_plan
module Retry = Webdep_faults.Retry

let faults_json : (string * Json.t) list ref = ref []

let faults () =
  section "Faults" "fault-injection overhead, retry recovery, coverage";
  let sample = [ "US"; "RU"; "BR"; "DE"; "JP"; "IN"; "FR"; "TH" ] in
  let counter name = Obs_metrics.value (Obs_metrics.counter name) in
  let clean_ds, clean_s =
    Span.timed ~name:"bench.faults.measure_clean" (fun () ->
        Measure.measure_all ~countries:sample ~jobs:1 world)
  in
  let zero_opts =
    {
      Measure.no_faults with
      plan = Faults.make ~rate:0.0 ~seed:7 ();
      retry = Retry.of_max_retries 3;
      coverage_threshold = 0.9;
    }
  in
  let zero_sweep, zero_s =
    Span.timed ~name:"bench.faults.measure_zero_rate" (fun () ->
        Measure.measure_sweep ~countries:sample ~jobs:1 ~faults:zero_opts world)
  in
  let identical =
    List.for_all
      (fun cc ->
        D.country_exn clean_ds cc = D.country_exn zero_sweep.Measure.dataset cc)
      sample
  in
  (* Counter deltas isolate the faulted run: fault.injected.* can only
     fire there, but retry.* may also move on genuine transient errors
     in the zero-rate sweep. *)
  let retry_before = counter "retry.attempts" in
  let faulted_opts =
    { zero_opts with plan = Faults.make ~rate:0.05 ~seed:7 () }
  in
  let faulted_sweep, faulted_s =
    Span.timed ~name:"bench.faults.measure_faulted" (fun () ->
        Measure.measure_sweep ~countries:sample ~jobs:1 ~faults:faulted_opts world)
  in
  let injected_kinds =
    [
      "dns_timeout"; "dns_servfail"; "dns_refused"; "packet_loss";
      "lame_delegation"; "tls_truncated"; "tls_failed";
    ]
    |> List.map (fun k -> (k, counter ("fault.injected." ^ k)))
  in
  let injected_total = List.fold_left (fun acc (_, v) -> acc + v) 0 injected_kinds in
  let retry_attempts = counter "retry.attempts" - retry_before in
  let recovered = counter "retry.recovered" in
  let exhausted = counter "retry.exhausted" in
  let degraded = counter "pipeline.sites.degraded" in
  let failed = counter "pipeline.sites.failed" in
  let insufficient = List.length faulted_sweep.Measure.insufficient in
  Printf.printf
    "measure (%d countries, --jobs 1): clean %.2fs, rate-0 plan %.2fs (x%.2f overhead), \
     datasets identical: %b\n"
    (List.length sample) clean_s zero_s (zero_s /. clean_s) identical;
  Printf.printf
    "rate 0.05 + 3 retries: %.2fs (x%.2f), %d faults injected, %d retries \
     (%d recovered, %d exhausted), %d degraded / %d failed sites, %d countries \
     below coverage threshold\n"
    faulted_s (faulted_s /. clean_s) injected_total retry_attempts recovered
    exhausted degraded failed insufficient;
  if not identical then
    prerr_endline "webdep bench: WARNING: rate-0 fault sweep differs from measure_all";
  faults_json :=
    [
      ("countries", Json.Int (List.length sample));
      ("clean_s", Json.Float clean_s);
      ("zero_rate_s", Json.Float zero_s);
      ("overhead", Json.Float (zero_s /. clean_s));
      ("identical", Json.Bool identical);
      ("faulted_s", Json.Float faulted_s);
      ( "injected",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) injected_kinds) );
      ("injected_total", Json.Int injected_total);
      ("retry_attempts", Json.Int retry_attempts);
      ("retry_recovered", Json.Int recovered);
      ("retry_exhausted", Json.Int exhausted);
      ("sites_degraded", Json.Int degraded);
      ("sites_failed", Json.Int failed);
      ("insufficient_countries", Json.Int insufficient);
    ]

(* ========================================================================
   Scale (always run): the paper-scale sweep claim.  Fresh worlds at
   each toplist size in WEBDEP_BENCH_SCALE_CS (default "300,2000"; the
   full-paper sweep adds 10000), measured end to end through the
   streaming pipeline, recording wall seconds, minor-heap allocation and
   the Gc.top_heap_words high-water mark.  Each size also lands in
   phases_s / phases_minor_words as scale_c<N>, so --compare gates it
   like any other phase.  top_heap_words here is cumulative over every
   earlier bench phase — an upper bound; the CI budget assert runs
   [webdep scale] in a fresh process instead.
   ======================================================================== *)

let scale_cs =
  let spec =
    match Sys.getenv_opt "WEBDEP_BENCH_SCALE_CS" with
    | Some s when s <> "" -> s
    | _ -> "300,2000"
  in
  String.split_on_char ',' spec
  |> List.filter_map int_of_string_opt
  |> List.filter (fun n -> n > 0)

let scale_json : (string * Json.t) list ref = ref []

let scale_phase () =
  section "Scale" "paper-scale sweeps: seconds, minor words, peak heap";
  let results =
    List.map
      (fun sc ->
        let r = Webdep_pipeline.Scale.run ~seed ~jobs ~c:sc () in
        record_phase (Printf.sprintf "scale_c%d" sc) r.Webdep_pipeline.Scale.seconds;
        record_minor_words
          (Printf.sprintf "scale_c%d" sc)
          r.Webdep_pipeline.Scale.minor_words;
        Printf.printf
          "c=%5d: %3d countries, %7d sites, %6.2fs, %11.0f minor words, \
           top_heap %9d words, mean hosting S %.4f\n%!"
          sc r.Webdep_pipeline.Scale.countries r.Webdep_pipeline.Scale.sites
          r.Webdep_pipeline.Scale.seconds r.Webdep_pipeline.Scale.minor_words
          r.Webdep_pipeline.Scale.top_heap_words
          r.Webdep_pipeline.Scale.mean_hosting_s;
        r)
      scale_cs
  in
  scale_json :=
    List.map
      (fun (r : Webdep_pipeline.Scale.result) ->
        ( Printf.sprintf "c%d" r.c,
          Json.Obj
            [
              ("countries", Json.Int r.countries);
              ("sites", Json.Int r.sites);
              ("seconds", Json.Float r.seconds);
              ("minor_words", Json.Float r.minor_words);
              ("top_heap_words", Json.Int r.top_heap_words);
              ("mean_hosting_s", Json.Float r.mean_hosting_s);
            ] ))
      results

(* ========================================================================
   serve phase — the batched query daemon under closed-loop load
   ======================================================================== *)

module Serve = Webdep_serve

let serve_c = env_int "WEBDEP_BENCH_SERVE_C" 300
let serve_n = env_int "WEBDEP_BENCH_SERVE_N" 40_000
let serve_clients = env_int "WEBDEP_BENCH_SERVE_CLIENTS" (max 2 (min 4 jobs))

(* Deterministic query mix cycling every kind, epoch and layer over the
   state's country list — the same stream regardless of client count. *)
let serve_mix countries n offset =
  let layers = [| D.Hosting; D.Dns; D.Ca; D.Tld |] in
  let epochs = [| "2023-05"; "2025-05" |] in
  let ccs = Array.of_list countries in
  List.init n (fun j ->
      let i = offset + j in
      let country = ccs.(i mod Array.length ccs) in
      let layer = layers.(i mod 4) in
      let epoch = epochs.(i mod 2) in
      match i mod 5 with
      | 0 -> Serve.Protocol.Score { epoch; layer; country }
      | 1 -> Serve.Protocol.Top_shares { epoch; layer; country; k = 10 }
      | 2 -> Serve.Protocol.Ranking { epoch; layer; k = 20 }
      | 3 ->
          Serve.Protocol.Delta
            { layer; country; old_epoch = "2023-05"; new_epoch = "2025-05" }
      | _ -> Serve.Protocol.Ping)

let serve_json : (string * Json.t) list ref = ref []

let serve_phase () =
  section "Serve" "batched dependence-query daemon under closed-loop load";
  (* A fresh warmed world at the paper-scale floor, independent of the
     bench's own -c, so qps numbers are comparable across bench configs. *)
  let state, build_s =
    Span.timed ~name:"bench.serve.build" (fun () ->
        let sw = World.create ~c:serve_c ~seed () in
        let ds23 = Measure.measure_all ~jobs sw in
        let ds25 = Measure.measure_all ~epoch:World.May_2025 ~jobs sw in
        let st =
          Serve.State.make ~fingerprint:"bench-serve"
            [ ("2023-05", ds23); ("2025-05", ds25) ]
        in
        Serve.State.warm st;
        st)
  in
  let path = Filename.temp_file "webdep_bench_serve" ".sock" in
  Sys.remove path;
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Serve.Server.run
          ~on_ready:(fun () -> Atomic.set ready true)
          (Serve.Server.config path)
          state)
  in
  while not (Atomic.get ready) do
    ignore (Unix.select [] [] [] 0.005)
  done;
  let countries = Serve.State.countries state in
  (* Byte-identity across the wire: the daemon's encoded reply must equal
     the local [State.answer] encoding for every query kind. *)
  let identical =
    let cl = Serve.Client.connect path in
    let ok =
      List.for_all
        (fun req ->
          Serve.Protocol.encode_response (Serve.Client.request cl req)
          = Serve.Protocol.encode_response (Serve.State.answer state req))
        (serve_mix countries 10 0)
    in
    Serve.Client.close cl;
    ok
  in
  (* Closed-loop load: each client domain holds one connection and keeps
     exactly one request in flight, so qps is throughput under strict
     request-reply pacing (no open-loop pile-up). *)
  let n_per = serve_n / serve_clients in
  let (), load_s =
    Span.timed ~name:"bench.serve.load" (fun () ->
        let clients =
          List.init serve_clients (fun i ->
              Domain.spawn (fun () ->
                  let reqs = serve_mix countries n_per (i * n_per) in
                  let cl = Serve.Client.connect path in
                  List.iter (fun r -> ignore (Serve.Client.request cl r)) reqs;
                  Serve.Client.close cl))
        in
        List.iter Domain.join clients)
  in
  let n_sent = n_per * serve_clients in
  let qps = float_of_int n_sent /. load_s in
  (* Registry reads before the between-phase reset; the server-side
     latency histogram covers arrival -> reply-queued per request. *)
  let q h p =
    match Obs_metrics.quantile h p with Some v -> v | None -> 0.0
  in
  let lat = Serve.Server.h_latency in
  let cache_hits = Obs_metrics.value Serve.Server.m_cache_hits in
  let cache_misses = Obs_metrics.value Serve.Server.m_cache_misses in
  let shed = Obs_metrics.value Serve.Server.m_shed in
  serve_json :=
    [
      ("c", Json.Int serve_c);
      ("clients", Json.Int serve_clients);
      ("requests", Json.Int n_sent);
      ("build_s", Json.Float build_s);
      ("load_s", Json.Float load_s);
      ("qps", Json.Float qps);
      ("latency_p50_us", Json.Float (1e6 *. q lat 0.50));
      ("latency_p99_us", Json.Float (1e6 *. q lat 0.99));
      ("latency_p999_us", Json.Float (1e6 *. q lat 0.999));
      ("latency_mean_us", Json.Float (1e6 *. Obs_metrics.mean lat));
      ("queue_depth_mean", Json.Float (Obs_metrics.mean Serve.Server.h_queue));
      ( "queue_depth_max",
        Json.Float
          (match Obs_metrics.max_value Serve.Server.h_queue with
          | Some v -> v
          | None -> 0.0) );
      ("batch_size_mean", Json.Float (Obs_metrics.mean Serve.Server.h_batch));
      ("cache_hits", Json.Int cache_hits);
      ("cache_misses", Json.Int cache_misses);
      ("shed", Json.Int shed);
      ("identical", Json.Bool identical);
    ];
  Printf.printf
    "c=%d build %.2fs | %d clients x %d reqs in %.3fs = %8.0f qps\n\
     latency us: p50 %.1f  p99 %.1f  p999 %.1f  mean %.1f\n\
     queue depth: mean %.2f max %.0f | batch mean %.2f | cache %d hit / %d \
     miss | shed %d | byte-identical: %s\n%!"
    serve_c build_s serve_clients n_per load_s qps
    (1e6 *. q lat 0.50) (1e6 *. q lat 0.99) (1e6 *. q lat 0.999)
    (1e6 *. Obs_metrics.mean lat)
    (Obs_metrics.mean Serve.Server.h_queue)
    (match Obs_metrics.max_value Serve.Server.h_queue with
    | Some v -> v
    | None -> 0.0)
    (Obs_metrics.mean Serve.Server.h_batch)
    cache_hits cache_misses shed
    (if identical then "yes" else "NO");
  (* Clean shutdown: Shutdown -> Bye, server drains and unlinks socket. *)
  let cl = Serve.Client.connect path in
  (match Serve.Client.request cl Serve.Protocol.Shutdown with
  | Serve.Protocol.Bye -> ()
  | _ -> prerr_endline "webdep bench: serve shutdown did not answer Bye");
  Serve.Client.close cl;
  Domain.join server

(* ========================================================================
   chaos phase — wire faults under load, then crash + warm restart
   ======================================================================== *)

let chaos_c = env_int "WEBDEP_BENCH_CHAOS_C" 120
let chaos_n = env_int "WEBDEP_BENCH_CHAOS_N" 400
let chaos_json : (string * Json.t) list ref = ref []

(* Two questions, both gated by --compare:
   1. Under a deterministic storm of wire faults (torn frames, dribbled
      writes, resets mid-frame, garbage length prefixes — verdicts are a
      pure hash of (seed, key), so the storm replays identically at any
      --jobs), what fraction of the replies the server *owes* does it
      deliver, and are they all byte-identical to [State.answer]?
   2. After a crash, how fast does a snapshot restore bring a correct
      answer back, versus re-running the two-epoch measurement sweep?
      The crash is modelled in process — state discarded, snapshot
      loaded, fresh server domain — because forking with live domains
      is forbidden in OCaml 5; CI exercises the real kill -9 path. *)
let chaos_phase () =
  section "Chaos" "deterministic wire faults, crash, restart from snapshot";
  let epochs =
    [ ("2023-05", World.May_2023); ("2025-05", World.May_2025) ]
  in
  let build () =
    let sw = World.create ~c:chaos_c ~seed () in
    let ds =
      List.map
        (fun (name, e) -> (name, Measure.measure_all ~epoch:e ~jobs sw))
        epochs
    in
    let st = Serve.State.make ~fingerprint:"bench-chaos" ds in
    Serve.State.warm st;
    st
  in
  let state, build_s = Span.timed ~name:"bench.chaos.build" build in
  let countries = Serve.State.countries state in
  let path = Filename.temp_file "webdep_bench_chaos" ".sock" in
  Sys.remove path;
  let start st =
    let ready = Atomic.make false in
    let d =
      Domain.spawn (fun () ->
          Serve.Server.run
            ~on_ready:(fun () -> Atomic.set ready true)
            (Serve.Server.config path)
            st)
    in
    while not (Atomic.get ready) do
      ignore (Unix.select [] [] [] 0.005)
    done;
    d
  in
  let local req =
    Serve.Protocol.encode_response (Serve.State.answer state req)
  in
  let server = start state in
  let plan = Faults.make ~rate:0.4 ~seed:(seed + 9) () in
  let reqs = Array.of_list (serve_mix countries 64 0) in
  let replies = ref 0 and injected = ref 0 in
  let refused = ref 0 and broken = ref 0 and mismatched = ref 0 in
  let (), storm_s =
    Span.timed ~name:"bench.chaos.storm" (fun () ->
        for i = 0 to chaos_n - 1 do
          let req = reqs.(i mod Array.length reqs) in
          let key = Printf.sprintf "bench-chaos-%d" i in
          match snd (Serve.Chaos.call plan ~key path req) with
          | Serve.Chaos.Reply resp ->
              incr replies;
              if Serve.Protocol.encode_response resp <> local req then
                incr mismatched
          | Serve.Chaos.Injected -> incr injected
          | Serve.Chaos.Refused _ -> incr refused
          | Serve.Chaos.Broken _ -> incr broken
        done)
  in
  (* Replies owed = clean or reassembled exchanges; the injected ones owe
     nothing.  Availability is delivered/owed. *)
  let owed = !replies + !refused + !broken in
  let availability = float_of_int !replies /. float_of_int (max 1 owed) in
  let cl = Serve.Client.connect path in
  (match Serve.Client.request cl Serve.Protocol.Shutdown with
  | Serve.Protocol.Bye -> ()
  | _ -> prerr_endline "webdep bench: chaos server shutdown did not answer Bye");
  Serve.Client.close cl;
  Domain.join server;
  (* Crash + warm restart: persist the warm state, drop it, then time
     snapshot-load -> state -> server -> first correct answer. *)
  let snap = Filename.temp_file "webdep_bench_chaos" ".snap" in
  Serve.Snapshot.save ~path:snap ~fingerprint:"bench-chaos"
    (Serve.State.datasets state);
  let probe = serve_mix countries 16 0 in
  let expected = List.map local probe in
  let recovered_identical = ref false in
  let handle = ref None in
  let (), recovery_s =
    Span.timed ~name:"bench.chaos.recover" (fun () ->
        match
          Serve.Snapshot.load ~path:snap ~fingerprint:"bench-chaos" ~countries
        with
        | Serve.Snapshot.Loaded shards ->
            let datasets =
              Serve.Snapshot.to_datasets ~epochs:(List.map fst epochs) ~countries
                ~fill:(fun _ _ ->
                  failwith "bench chaos: complete snapshot must not re-measure")
                shards
            in
            let st = Serve.State.make ~fingerprint:"bench-chaos" datasets in
            Serve.State.warm st;
            let d = start st in
            let cl = Serve.Client.connect path in
            let first =
              Serve.Protocol.encode_response
                (Serve.Client.request cl (List.hd probe))
            in
            recovered_identical := first = List.hd expected;
            handle := Some (d, cl)
        | _ -> prerr_endline "webdep bench: chaos snapshot failed to load")
  in
  (match !handle with
  | None -> ()
  | Some (d, cl) ->
      let got =
        List.map
          (fun r ->
            Serve.Protocol.encode_response (Serve.Client.request cl r))
          (List.tl probe)
      in
      recovered_identical := !recovered_identical && got = List.tl expected;
      (match Serve.Client.request cl Serve.Protocol.Shutdown with
      | Serve.Protocol.Bye -> ()
      | _ -> prerr_endline "webdep bench: recovered server did not answer Bye");
      Serve.Client.close cl;
      Domain.join d);
  Sys.remove snap;
  let speedup = build_s /. (if recovery_s > 0.0 then recovery_s else 1e-9) in
  chaos_json :=
    [
      ("c", Json.Int chaos_c);
      ("requests", Json.Int chaos_n);
      ("build_s", Json.Float build_s);
      ("storm_s", Json.Float storm_s);
      ("replies", Json.Int !replies);
      ("injected", Json.Int !injected);
      ("refused", Json.Int !refused);
      ("broken", Json.Int !broken);
      ("mismatched", Json.Int !mismatched);
      ("availability", Json.Float availability);
      ("recovery_s", Json.Float recovery_s);
      ("recovery_speedup", Json.Float speedup);
      ("recovered_identical", Json.Bool !recovered_identical);
    ];
  Printf.printf
    "c=%d build %.2fs | storm: %d calls in %.3fs — %d replies / %d injected \
     / %d refused / %d broken / %d mismatched | availability %.4f\n\
     crash recovery: %.3fs from snapshot (%.0fx faster than the %.2fs \
     re-sweep) | byte-identical after restart: %s\n%!"
    chaos_c build_s chaos_n storm_s !replies !injected !refused !broken
    !mismatched availability recovery_s speedup build_s
    (if !recovered_identical then "yes" else "NO")

(* ========================================================================
   Epoch churn-log replay (always runs): O(churn) per-epoch rescoring
   versus a full re-sweep at every epoch, compaction ratio, and the
   warm-start flatness claim — a compacted long history restarts as fast
   as a genuinely short one.  CI asserts on the "epoch" object.
   ======================================================================== *)

module Epoch = Webdep_epoch

let epoch_c = env_int "WEBDEP_BENCH_EPOCH_C" 300
let epoch_n = env_int "WEBDEP_BENCH_EPOCH_N" 24
let epoch_churn = 0.02
let epoch_json : (string * Json.t) list ref = ref []

let epoch_phase () =
  section "Epoch"
    "churn-log replay: O(churn) rescoring vs per-epoch full re-sweeps";
  let sw = World.create ~c:epoch_c ~seed () in
  let ds23 = Measure.measure_all ~jobs sw in
  let ds25 = Measure.measure_all ~epoch:World.May_2025 ~jobs sw in
  let base = List.map (D.country_exn ds23) (D.countries ds23) in
  let donors =
    List.map
      (fun cc -> (cc, Array.of_list (D.country_exn ds25 cc).D.sites))
      (D.countries ds25)
  in
  let events =
    Epoch.Synth.generate ~seed ~fraction:epoch_churn ~epochs:epoch_n
      ~base_epoch:0 ~base ~donors
  in
  let log_path = Filename.temp_file "webdep_bench_epoch" ".log" in
  let (), append_s =
    Span.timed ~name:"bench.epoch.append" (fun () ->
        Epoch.Log.create ~path:log_path ~base_epoch:0 ~base ();
        List.iter
          (fun (ev : Epoch.Log.event) ->
            Epoch.Log.append ~path:log_path ~epoch:ev.Epoch.Log.epoch
              ev.Epoch.Log.changes)
          events)
  in
  let log =
    match Epoch.Log.load ~path:log_path with
    | Epoch.Log.Loaded l -> l
    | _ -> failwith "bench epoch: freshly written log must load"
  in
  (* Incremental side: fold each epoch through the per-layer tallies and
     read every country's hosting score — O(churn + countries)/epoch. *)
  let inc_scores = ref [] in
  let _, replay_s =
    Span.timed ~name:"bench.epoch.replay" (fun () ->
        Epoch.Replay.replay
          ~observe:(fun r ->
            inc_scores := Epoch.Replay.scores ~jobs:1 r D.Hosting :: !inc_scores)
          log)
  in
  let inc_scores = List.rev !inc_scores in
  (* Cold side: what the no-log pipeline would do — rebuild the full
     dataset at every epoch and re-tally every country from scratch. *)
  let cold_scores = ref [] in
  let _, full_s =
    Span.timed ~name:"bench.epoch.full" (fun () ->
        Epoch.Replay.replay
          ~observe:(fun r ->
            let ds = D.of_country_data (Epoch.Replay.materialize r) in
            cold_scores := Metrics.all_scores ds D.Hosting :: !cold_scores)
          log)
  in
  let cold_scores = List.rev !cold_scores in
  (* Every epoch's scores must agree bit-for-bit (the cold list is
     rank-sorted, the incremental one is in baseline order). *)
  let by_cc l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let identical =
    List.length inc_scores = List.length cold_scores
    && List.for_all2
         (fun a b ->
           let a = by_cc a and b = by_cc b in
           List.length a = List.length b
           && List.for_all2
                (fun (cc1, s1) (cc2, s2) ->
                  String.equal cc1 cc2
                  && Int64.equal (Int64.bits_of_float s1) (Int64.bits_of_float s2))
                a b)
         inc_scores cold_scores
  in
  let speedup = full_s /. (if replay_s > 0.0 then replay_s else 1e-9) in
  (* Compaction: collapse all but the last 4 epochs; the file shrinks and
     a warm start costs what a genuinely 4-epoch history costs. *)
  let raw_bytes = (Unix.stat log_path).Unix.st_size in
  let compacted = Epoch.Replay.compact log ~keep_last:4 in
  let compact_path = Filename.temp_file "webdep_bench_epoch" ".compact.log" in
  Epoch.Log.write ~path:compact_path compacted;
  let compacted_bytes = (Unix.stat compact_path).Unix.st_size in
  let short_path = Filename.temp_file "webdep_bench_epoch" ".short.log" in
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  Epoch.Log.create ~path:short_path ~base_epoch:0 ~base ();
  List.iter
    (fun (ev : Epoch.Log.event) ->
      Epoch.Log.append ~path:short_path ~epoch:ev.Epoch.Log.epoch
        ev.Epoch.Log.changes)
    (take 4 events);
  let warm_start path =
    snd
      (Span.timed ~name:"bench.epoch.warm" (fun () ->
           match Epoch.Log.load ~path with
           | Epoch.Log.Loaded l -> ignore (Epoch.Replay.replay l)
           | _ -> failwith "bench epoch: warm-start log must load"))
  in
  let warm_short_s = warm_start short_path in
  let warm_compacted_s = warm_start compact_path in
  let warm_ratio =
    warm_compacted_s /. (if warm_short_s > 0.0 then warm_short_s else 1e-9)
  in
  Sys.remove log_path;
  Sys.remove compact_path;
  Sys.remove short_path;
  epoch_json :=
    [
      ("c", Json.Int epoch_c);
      ("epochs", Json.Int epoch_n);
      ("churn", Json.Float epoch_churn);
      ("append_s", Json.Float append_s);
      ("replay_s", Json.Float replay_s);
      ("full_s", Json.Float full_s);
      ("speedup", Json.Float speedup);
      ("identical", Json.Bool identical);
      ("raw_bytes", Json.Int raw_bytes);
      ("compacted_bytes", Json.Int compacted_bytes);
      ("warm_short_s", Json.Float warm_short_s);
      ("warm_compacted_s", Json.Float warm_compacted_s);
      ("warm_ratio", Json.Float warm_ratio);
    ];
  Printf.printf
    "epoch c=%d: %d epochs at %.0f%% churn | append %.3fs, replay %.3fs vs \
     full %.3fs (%.1fx) | scores bit-identical at every epoch: %s\n\
     compaction: %d -> %d bytes | warm start: 4-epoch %.3fs vs compacted \
     %d-epoch %.3fs (ratio %.2f)\n%!"
    epoch_c epoch_n (100.0 *. epoch_churn) append_s replay_s full_s speedup
    (if identical then "yes" else "NO")
    raw_bytes compacted_bytes warm_short_s epoch_n warm_compacted_s warm_ratio

(* ========================================================================
   main
   ======================================================================== *)

(* Per-phase nonzero counters, captured before each between-phase reset:
   what each table/figure consumed from the pipeline and simulators. *)
let phase_counters : (string * (string * int) list) list ref = ref []

(* BENCH_obs.json, schema webdep-bench/10 (upgrades /9: the new "epoch"
   object and the "epoch" entry in phases_s / phases_minor_words —
   churn-log replay speedup, per-epoch score bit-identity, compaction
   ratio and warm-start flatness, gated by --compare like any phase):
   - phases_s:        bench-locally recorded per-phase wall seconds
                      (includes world_create / measure_all / the 2025
                      measurement inside "longitudinal")
   - phases_minor_words: per-phase minor-heap allocation (Gc.minor_words
                      deltas) — the noise-free companion to phases_s
   - phase_counters:  nonzero counters attributable to each phase alone
                      (the "kernels" entry carries the dns.cache.* totals
                      of the cached measurement run; the "store" entry
                      carries that phase's store.hits/store.misses)
   - metrics:         the registry snapshot taken right after the
                      measurement sweep (pipeline counters/histograms)
   - speedup_probe:   seq-vs-par wall clock + determinism check
                      (absent at --jobs 1)
   - kernels:         hot-path micro-benchmarks — transport solver
                      old-vs-new ns/run per shape, and cached-vs-uncached
                      measure_all wall clock with cache hit/miss totals
                      and the dataset-equality verdict
   - store:           measurement-store effectiveness — cold-vs-warm
                      wall clock over the fixed sample (both epochs),
                      hit/miss totals, the byte-identity and
                      jobs-invariance verdicts, and full-vs-incremental
                      longitudinal comparison timing with churn totals
   - faults:          robustness-plane cost — rate-0 plan overhead vs
                      plain measure_all (with the identity verdict) and
                      the rate-0.05 sweep's injection/retry/coverage
                      totals
   - scale:           per-toplist-size sweep telemetry (fresh world per
                      size): countries, sites, seconds, minor words,
                      top_heap_words, mean hosting S
   - serve:           batched query-daemon load test on a warmed
                      c=WEBDEP_BENCH_SERVE_C store — closed-loop qps,
                      server-side latency p50/p99/p999 (interpolated
                      histogram quantiles), queue-depth / batch-size
                      stats, cache hit/miss and shed totals, and the
                      wire-vs-local byte-identity verdict
   - chaos:           crash-safety telemetry — deterministic wire-fault
                      storm taxonomy (replies/injected/refused/broken/
                      mismatched) with the availability ratio over owed
                      replies, and the snapshot crash-recovery time
                      versus the cold two-epoch re-sweep with the
                      after-restart byte-identity verdict
   - epoch:           churn-log replay telemetry — append/replay wall
                      clock versus a full per-epoch re-sweep (speedup),
                      per-epoch score bit-identity, raw-vs-compacted log
                      bytes, and warm-start seconds for a genuinely
                      short history versus a compacted long one *)
let write_bench_json path =
  let phases =
    List.rev_map (fun (name, s) -> (name, Json.Float s)) !recorded_phases
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let minor_words =
    List.rev_map (fun (name, w) -> (name, Json.Float w)) !recorded_minor_words
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let total = List.fold_left (fun acc (_, s) -> acc +. s) 0.0 !recorded_phases in
  let counters_json =
    List.rev_map
      (fun (name, cs) ->
        (name, Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) cs)))
      !phase_counters
  in
  let speedup_json =
    match speedup with
    | None -> []
    | Some p ->
        [
          ( "speedup_probe",
            Json.Obj
              [
                ("countries", Json.Int p.probe_countries);
                ("seq_s", Json.Float p.seq_s);
                ("par_s", Json.Float p.par_s);
                ("speedup", Json.Float p.speedup);
                ("identical", Json.Bool p.identical);
              ] );
        ]
  in
  let doc =
    Json.Obj
      ([
         ("schema", Json.String "webdep-bench/10");
         ("c", Json.Int c);
         ("seed", Json.Int seed);
         ("jobs", Json.Int jobs);
         ("total_s", Json.Float total);
         ("phases_s", Json.Obj phases);
         ("phases_minor_words", Json.Obj minor_words);
         ("phase_counters", Json.Obj counters_json);
       ]
      @ speedup_json
      @ [
          ("kernels", Json.Obj !kernel_json);
          ("store", Json.Obj !store_json);
          ("faults", Json.Obj !faults_json);
          ("scale", Json.Obj !scale_json);
          ("serve", Json.Obj !serve_json);
          ("chaos", Json.Obj !chaos_json);
          ("epoch", Json.Obj !epoch_json);
          ("metrics", measure_metrics);
        ])
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" path;
  total

let () =
  let phase name f =
    let f =
      match injected_sleep with
      | Some (n, s) when n = name ->
          fun () ->
            Unix.sleepf s;
            f ()
      | _ -> f
    in
    let minor_before = Gc.minor_words () in
    let (), seconds = Span.timed ~name:("bench." ^ name) f in
    record_phase name seconds;
    record_minor_words name (Gc.minor_words () -. minor_before);
    let nonzero =
      Obs_metrics.fold_counters
        (fun cnt acc ->
          let v = Obs_metrics.value cnt in
          if v > 0 then (Obs_metrics.counter_name cnt, v) :: acc else acc)
        []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    if nonzero <> [] then phase_counters := (name, nonzero) :: !phase_counters;
    (* Zero everything so the next phase's counters are its own. *)
    Webdep_obs.Registry.reset ()
  in
  List.iter
    (fun (name, f) -> phase name f)
    [
      ("fig1", fig1); ("fig2", fig2); ("fig3", fig3); ("fig4", fig4);
      ("table1", table1); ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
      ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11);
      ("fig12", fig12); ("fig13", fig13); ("table2", table2); ("table3", table3);
      ("fig14", fig14); ("fig15", fig15); ("fig16", fig16); ("fig17", fig17);
      ("fig18", fig18); ("fig19", fig19); ("fig20", fig20); ("fig21", fig21);
      ("fig22", fig22); ("table5", table5); ("table6", table6); ("table7", table7);
      ("table8", table8); ("vantage", vantage); ("longitudinal", longitudinal);
      ("correlations", correlations); ("language_case_study", language_case_study);
      ("redundancy_study", redundancy_study); ("external_tlds", external_tlds);
      ("baselines", baselines); ("weighted_and_pairwise", weighted_and_pairwise);
      ("shape_similarity", shape_similarity); ("state_ca", state_ca);
      ("crux_coverage", crux_coverage); ("substrate_validation", substrate_validation);
      ("ablation_fdiv", ablation_fdiv); ("ablation_emd", ablation_emd);
      ("ablation_endemicity", ablation_endemicity);
      ("ablation_clustering", ablation_clustering);
      ("ablation_c_sensitivity", ablation_c_sensitivity);
    ];
  if Sys.getenv_opt "WEBDEP_BENCH_SKIP_TIMINGS" = None then phase "timings" timings;
  (* The kernels, store, faults, scale, serve, chaos and epoch phases
     always run — CI's BENCH diff asserts on them. *)
  phase "kernels" kernels;
  phase "store" store_phase;
  phase "faults" faults;
  phase "scale" scale_phase;
  phase "serve" serve_phase;
  phase "chaos" chaos_phase;
  phase "epoch" epoch_phase;
  let out =
    match Sys.getenv_opt "WEBDEP_BENCH_OUT" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_obs.json"
  in
  let total = write_bench_json out in
  Printf.printf "\ntotal bench time: %.1fs\n" total;
  (* --compare: gate this run against a saved baseline.  Current phases
     are re-read from the file just written, so the gate sees exactly
     what a later run would load.  The noise probe re-measures a single
     country a few times to learn this machine's run-to-run spread. *)
  match compare_baseline with
  | None -> ()
  | Some path ->
      if not (Sys.file_exists path) then begin
        Printf.eprintf "webdep bench: no such baseline file: %s\n" path;
        exit 125
      end;
      let read_file p =
        let ic = open_in_bin p in
        let s = really_input_string ic (in_channel_length ic) in
        close_in ic;
        s
      in
      let baseline = Webdep_prof.Regress.phases_of_json (Json.parse (read_file path)) in
      let current = Webdep_prof.Regress.phases_of_json (Json.parse (read_file out)) in
      if baseline = [] then begin
        Printf.eprintf "webdep bench: baseline %s has no phases_s object\n" path;
        exit 125
      end;
      let noise_cv =
        Webdep_prof.Regress.noise_probe ~runs:3 (fun () ->
            ignore
              (Measure.measure_all ~countries:[ "US"; "DE"; "JP"; "BR" ] ~jobs:1 world))
      in
      let report =
        Webdep_prof.Regress.compare_runs ~noise_cv ~baseline ~current ()
      in
      print_newline ();
      print_string (Webdep_prof.Regress.render report);
      if not report.Webdep_prof.Regress.ok then exit 3
